//! Per-node MAC state for the simplified IEEE 802.11 DCF.
//!
//! The MAC models the behaviour the paper's results depend on:
//!
//! * a finite drop-tail interface queue per node,
//! * carrier sense — a node defers while any transmission is audible within
//!   its carrier-sense range,
//! * slotted binary-exponential backoff (CWmin..CWmax),
//! * receiver-side collisions — two transmissions overlapping at a receiver
//!   corrupt each other,
//! * airtime charged per byte at the data rate (unicast) or basic rate
//!   (broadcast) plus PHY and ACK overheads,
//! * a unicast retry limit; exhaustion surfaces as a link-failure callback to
//!   the network layer (the "MAC feedback" MTS, AODV and DSR rely on).
//!
//! The state lives here; the event-driven logic that needs access to the
//! whole world (positions, other nodes' MACs, the recorder) lives in
//! [`crate::engine`].

use crate::config::MacConfig;
use crate::event::{QueuedFrame, TxId};
use crate::time::{Duration, SimTime};
use manet_wire::{Frame, MacDest};
use rand::Rng;
use std::collections::VecDeque;

/// A transmission currently on the air from this node.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Identifier of the transmission.
    pub tx: TxId,
    /// The frame being transmitted.
    pub frame: QueuedFrame,
    /// When the transmission started.
    pub start: SimTime,
    /// When the transmission ends.
    pub end: SimTime,
    /// Nodes that were within transmission range when the frame left.
    pub receivers: Vec<manet_wire::NodeId>,
}

/// A reception interval registered at a receiver (used to detect collisions).
#[derive(Debug, Clone, Copy)]
pub struct RxInterval {
    /// Which transmission this interval belongs to.
    pub tx: TxId,
    /// Start of the reception.
    pub start: SimTime,
    /// End of the reception.
    pub end: SimTime,
}

/// Per-node MAC state.
#[derive(Debug, Default)]
pub struct MacState {
    /// Interface queue (head is next to transmit).
    pub queue: VecDeque<QueuedFrame>,
    /// The transmission currently on the air from this node, if any.
    pub transmitting: Option<InFlight>,
    /// True when a `MacAttempt` event is already pending for this node.
    pub attempt_pending: bool,
    /// Receptions currently (or recently) overlapping this node.
    pub rx_intervals: Vec<RxInterval>,
    /// Intervals during which this node itself was transmitting (a
    /// transmitting node is deaf — half duplex).
    pub tx_intervals: Vec<(SimTime, SimTime)>,
    /// Current backoff stage (doubles the contention window per retry).
    pub backoff_stage: u32,
    /// Frames dropped because the queue was full.
    pub queue_drops: u64,
    /// Frames dropped after exhausting the retry limit.
    pub retry_drops: u64,
    /// Frames successfully transmitted (unicast acknowledged or broadcast sent).
    pub tx_ok: u64,
}

impl MacState {
    /// Fresh MAC state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to enqueue a frame; returns false (and counts a drop) if the
    /// interface queue is full.
    pub fn enqueue(&mut self, frame: Frame, capacity: usize) -> bool {
        if self.queue.len() >= capacity {
            self.queue_drops += 1;
            return false;
        }
        self.queue.push_back(QueuedFrame { frame, attempts: 0 });
        true
    }

    /// Put a frame back at the head of the queue for a retry.
    pub fn requeue_front(&mut self, frame: QueuedFrame) {
        self.queue.push_front(frame);
    }

    /// Contention window (in slots) for the current backoff stage.
    pub fn contention_window(&self, cfg: &MacConfig) -> u32 {
        let cw = (cfg.cw_min + 1)
            .saturating_mul(1u32.checked_shl(self.backoff_stage).unwrap_or(u32::MAX))
            .saturating_sub(1);
        cw.min(cfg.cw_max)
    }

    /// Draw a random backoff delay (DIFS + uniformly chosen slots).
    pub fn draw_backoff(&self, cfg: &MacConfig, rng: &mut impl Rng) -> Duration {
        let cw = self.contention_window(cfg);
        let slots = rng.gen_range(0..=cw);
        cfg.difs + cfg.slot_time.scaled(slots as f64)
    }

    /// Move to the next backoff stage after a failed attempt.
    pub fn escalate_backoff(&mut self) {
        self.backoff_stage = (self.backoff_stage + 1).min(10);
    }

    /// Reset the backoff stage after a successful transmission.
    pub fn reset_backoff(&mut self) {
        self.backoff_stage = 0;
    }

    /// Drop reception/transmission interval bookkeeping that ended before `now`.
    ///
    /// Note: the sweep is part of the model's observable behaviour, not just
    /// a size bound — an interval that ended mid-window of a still-in-flight
    /// transmission is deliberately forgotten once a *later* transmission
    /// touches this node, so collision detection only sees receptions that
    /// were still live when the node was last disturbed.  Deferring the
    /// sweep changes collision outcomes; keep the call sites eager.
    pub fn gc_intervals(&mut self, now: SimTime) {
        self.rx_intervals.retain(|i| i.end > now);
        self.tx_intervals.retain(|&(_, end)| end > now);
    }

    /// Was this node transmitting at any point during `[start, end)`?
    pub fn was_transmitting_during(&self, start: SimTime, end: SimTime) -> bool {
        self.tx_intervals.iter().any(|&(s, e)| s < end && start < e)
            || self
                .transmitting
                .as_ref()
                .map(|t| t.start < end && start < t.end)
                .unwrap_or(false)
    }

    /// Did any *other* reception overlap `[start, end)` at this node?
    pub fn reception_collided(&self, tx: TxId, start: SimTime, end: SimTime) -> bool {
        self.rx_intervals
            .iter()
            .any(|i| i.tx != tx && i.start < end && start < i.end)
    }
}

/// Airtime of a frame of `bytes` bytes under `cfg`, including PHY overhead and
/// (for unicast) the SIFS+ACK exchange.
pub fn airtime(bytes: u32, dest: MacDest, cfg: &MacConfig) -> Duration {
    let rate = match dest {
        MacDest::Broadcast => cfg.basic_rate_bps,
        MacDest::Unicast(_) => cfg.data_rate_bps,
    };
    let payload_time = Duration::from_secs(f64::from(bytes) * 8.0 / rate);
    let ack = match dest {
        MacDest::Broadcast => Duration::ZERO,
        MacDest::Unicast(_) => cfg.ack_overhead,
    };
    cfg.phy_overhead + payload_time + ack
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_wire::{ConnectionId, DataPacket, NetPacket, NodeId, PacketId, TcpSegment};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frame() -> Frame {
        Frame::unicast(
            NodeId(0),
            NodeId(1),
            NetPacket::Data(DataPacket::new(
                PacketId(0),
                NodeId(0),
                NodeId(1),
                TcpSegment::data(ConnectionId(0), 0, 0, 1000),
            )),
        )
    }

    #[test]
    fn queue_respects_capacity() {
        let mut m = MacState::new();
        assert!(m.enqueue(frame(), 2));
        assert!(m.enqueue(frame(), 2));
        assert!(!m.enqueue(frame(), 2));
        assert_eq!(m.queue.len(), 2);
        assert_eq!(m.queue_drops, 1);
    }

    #[test]
    fn requeue_front_preserves_retry_order() {
        let mut m = MacState::new();
        m.enqueue(frame(), 10);
        let mut head = m.queue.pop_front().unwrap();
        head.attempts = 3;
        m.enqueue(frame(), 10);
        m.requeue_front(head);
        assert_eq!(m.queue.front().unwrap().attempts, 3);
    }

    #[test]
    fn contention_window_doubles_and_saturates() {
        let cfg = MacConfig::default();
        let mut m = MacState::new();
        assert_eq!(m.contention_window(&cfg), 31);
        m.escalate_backoff();
        assert_eq!(m.contention_window(&cfg), 63);
        for _ in 0..20 {
            m.escalate_backoff();
        }
        assert_eq!(m.contention_window(&cfg), cfg.cw_max);
        m.reset_backoff();
        assert_eq!(m.contention_window(&cfg), 31);
    }

    #[test]
    fn backoff_includes_difs_and_is_bounded() {
        let cfg = MacConfig::default();
        let m = MacState::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let b = m.draw_backoff(&cfg, &mut rng);
            assert!(b >= cfg.difs);
            assert!(b <= cfg.difs + cfg.slot_time.scaled(f64::from(cfg.cw_min)));
        }
    }

    #[test]
    fn airtime_unicast_faster_rate_but_has_ack() {
        let cfg = MacConfig::default();
        let uni = airtime(1000, MacDest::Unicast(NodeId(1)), &cfg);
        let bc = airtime(1000, MacDest::Broadcast, &cfg);
        // Broadcast is sent at the 2 Mbit/s basic rate, so it takes longer
        // even though unicast pays the ACK overhead.
        assert!(bc > uni);
        // Both include at least the PHY overhead.
        assert!(uni > cfg.phy_overhead);
    }

    #[test]
    fn collision_detection_overlap_semantics() {
        let mut m = MacState::new();
        let t = |s: f64| SimTime::from_secs(s);
        m.rx_intervals.push(RxInterval {
            tx: TxId(1),
            start: t(1.0),
            end: t(2.0),
        });
        // Overlapping interval from a different transmission collides.
        assert!(m.reception_collided(TxId(2), t(1.5), t(2.5)));
        // The same transmission does not collide with itself.
        assert!(!m.reception_collided(TxId(1), t(1.5), t(2.5)));
        // Back-to-back (touching) intervals do not collide.
        assert!(!m.reception_collided(TxId(2), t(2.0), t(3.0)));
        m.gc_intervals(t(2.5));
        assert!(m.rx_intervals.is_empty());
    }

    /// Regression pin for the PR 4 finding that the interval sweep's *timing*
    /// is observable model behaviour, not just a size bound: the engine calls
    /// [`MacState::gc_intervals`] eagerly — at the instant a new transmission
    /// touches a node, *before* registering the new interval — so an interval
    /// that has already ended is forgotten and can no longer collide with a
    /// window it historically overlapped.  A "deferred sweep" optimisation
    /// (batching the retain, sweeping at pop time, or sweeping after the
    /// push) keeps such intervals visible and changes collision outcomes;
    /// the full-run consequences are pinned byte-exactly by the golden-trace
    /// digests in `tests/golden_trace.rs` (collision counts included), and
    /// this test pins the local semantics the call sites rely on.
    #[test]
    fn eager_interval_sweep_is_part_of_the_collision_model() {
        let t = |s: f64| SimTime::from_secs(s);
        let mut m = MacState::new();
        m.rx_intervals.push(RxInterval {
            tx: TxId(1),
            start: t(1.0),
            end: t(2.0),
        });
        m.rx_intervals.push(RxInterval {
            tx: TxId(2),
            start: t(1.5),
            end: t(4.0),
        });
        // Before any sweep, a window overlapping the ended interval collides.
        assert!(m.reception_collided(TxId(9), t(1.2), t(1.4)));
        // A new transmission touches the node at t = 2.5: the engine sweeps
        // first (the ended interval [1.0, 2.0] is forgotten; the still-live
        // [1.5, 4.0] is kept), then registers the new interval.
        m.gc_intervals(t(2.5));
        m.rx_intervals.push(RxInterval {
            tx: TxId(3),
            start: t(2.5),
            end: t(3.0),
        });
        assert_eq!(m.rx_intervals.len(), 2, "ended interval swept eagerly");
        // The historical overlap is gone: only the live intervals collide.
        assert!(
            !m.reception_collided(TxId(9), t(1.2), t(1.4)),
            "a deferred sweep would still see the ended interval here"
        );
        assert!(m.reception_collided(TxId(9), t(1.6), t(1.7)));
        // Boundary: an interval ending exactly at the sweep time is dropped
        // (`retain(end > now)`), which is the edge a batched sweep would move.
        let mut b = MacState::new();
        b.rx_intervals.push(RxInterval {
            tx: TxId(5),
            start: t(0.0),
            end: t(2.0),
        });
        b.gc_intervals(t(2.0));
        assert!(b.rx_intervals.is_empty());
    }

    #[test]
    fn half_duplex_detection() {
        let mut m = MacState::new();
        let t = |s: f64| SimTime::from_secs(s);
        m.tx_intervals.push((t(0.0), t(1.0)));
        assert!(m.was_transmitting_during(t(0.5), t(1.5)));
        assert!(!m.was_transmitting_during(t(1.0), t(2.0)));
        m.gc_intervals(t(5.0));
        assert!(m.tx_intervals.is_empty());
    }
}
