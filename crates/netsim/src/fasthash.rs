//! A fast, non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The engine's recorder and the routing agents hash small keys (node ids,
//! packet ids, `(source, destination, broadcast id)` tuples) millions of
//! times per run; `std`'s default SipHash is DoS-resistant but costs several
//! times more per small key than needed here, where every key is
//! simulator-internal and attacker-free.  This is the FxHash multiply-rotate
//! scheme used by rustc (vendoring the real `rustc-hash` crate is not
//! possible in the offline build): a word-at-a-time rotate-xor-multiply,
//! `Default`-constructible so it can seed `HashMap`/`HashSet` via
//! [`BuildHasherDefault`].
//!
//! Determinism: the hash is seed-free and stable across runs and platforms,
//! so iteration order of an `FxHashMap` is stable for one build — but, as
//! with any `HashMap`, code that needs a canonical order must still sort.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (a.k.a. FireflyHash), chosen so a
/// single multiply diffuses well for word-sized keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` seeded with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` seeded with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave_normally() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        let mut s: FxHashSet<(u16, u16, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2, 3)));
        assert!(!s.insert((1, 2, 3)));
        assert!(s.contains(&(1, 2, 3)));
    }

    #[test]
    fn distinct_small_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash_one = |k: u64| build.hash_one(k);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_one(i));
        }
        assert_eq!(seen.len(), 10_000, "sequential u64 keys must not collide");
    }

    #[test]
    fn byte_slices_hash_consistently() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash_one = |k: &str| build.hash_one(k);
        assert_eq!(hash_one("RREQ"), hash_one("RREQ"));
        assert_ne!(hash_one("RREQ"), hash_one("RREP"));
    }
}
