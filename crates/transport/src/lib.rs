//! # manet-tcp
//!
//! A self-contained TCP Reno implementation driven by the discrete-event
//! simulator, reproducing the behaviour the paper's evaluation relies on:
//!
//! * [`rto`] — Jacobson/Karels round-trip estimation with Karn's rule and
//!   exponential back-off;
//! * [`reno`] — the Reno congestion-control state machine (slow start,
//!   congestion avoidance, fast retransmit, fast recovery);
//! * [`sender`] — the sending endpoint: window management, retransmission
//!   queue, duplicate-ACK counting, retransmission timer, plus the
//!   [`FlowProfile`] traffic shaping (start time, byte budget, on-off and
//!   request-response application patterns);
//! * [`receiver`] — the receiving endpoint: cumulative ACK generation and an
//!   out-of-order reassembly buffer (out-of-order arrivals are what punish
//!   concurrent-multipath schemes, cf. the SMR discussion in the paper);
//! * [`config`] — transport parameters.
//!
//! The endpoints are *sans-io*: they never talk to the simulator directly.
//! They consume events (`segment arrived`, `timer fired`, `time to send`) and
//! return [`TcpOutcome`] values listing segments to transmit and the next
//! retransmission deadline; the connection-table node stack in `manet-stack`
//! moves those segments through the routing layer.  This keeps the whole
//! transport logic unit-testable without a simulator.

pub mod config;
pub mod receiver;
pub mod reno;
pub mod rto;
pub mod sender;

pub use config::{FlowProfile, FlowShape, TcpConfig};
pub use receiver::TcpReceiver;
pub use reno::{CongestionState, RenoController};
pub use rto::RtoEstimator;
pub use sender::{TcpOutcome, TcpSender, TimerHandle};
