//! Retransmission-timeout estimation.
//!
//! Standard Jacobson/Karels smoothed RTT estimation (RFC 6298 constants),
//! Karn's rule (never sample a retransmitted segment) — which the caller
//! enforces by only feeding unambiguous samples — and exponential back-off on
//! consecutive timeouts.

use manet_netsim::Duration;
use serde::{Deserialize, Serialize};

/// Round-trip-time estimator producing the retransmission timeout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtoEstimator {
    /// Smoothed RTT, seconds (`None` until the first sample).
    srtt: Option<f64>,
    /// RTT variance, seconds.
    rttvar: f64,
    /// Current back-off exponent (0 = no back-off).
    backoff: u32,
    /// Lower bound on the RTO, seconds.
    min_rto: f64,
    /// Upper bound on the RTO, seconds.
    max_rto: f64,
    /// Cap on the back-off exponent.
    max_backoff: u32,
}

impl RtoEstimator {
    /// New estimator with the given RTO bounds.
    pub fn new(min_rto: f64, max_rto: f64, max_backoff: u32) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: 0.0,
            backoff: 0,
            min_rto,
            max_rto,
            max_backoff,
        }
    }

    /// Feed one RTT sample (seconds).  Must only be called for segments that
    /// were *not* retransmitted (Karn's rule).
    pub fn sample(&mut self, rtt_secs: f64) {
        let rtt = rtt_secs.max(0.0);
        match self.srtt {
            None => {
                // First measurement: RFC 6298 §2.2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                // Subsequent measurements: alpha = 1/8, beta = 1/4.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
        // A valid sample means the path is alive: clear the back-off.
        self.backoff = 0;
    }

    /// The current RTO (including any back-off), clamped to the bounds.
    pub fn rto(&self) -> Duration {
        let base = match self.srtt {
            None => self.min_rto.max(1.0),
            Some(srtt) => srtt + (4.0 * self.rttvar).max(0.010),
        };
        let backed_off = base * f64::from(1u32 << self.backoff.min(self.max_backoff));
        Duration::from_secs(backed_off.clamp(self.min_rto, self.max_rto))
    }

    /// A retransmission timer expired: double the timeout (bounded).
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(self.max_backoff);
    }

    /// Current smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// Current back-off exponent.
    pub fn backoff_exponent(&self) -> u32 {
        self.backoff
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        RtoEstimator::new(1.0, 64.0, 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_conservative() {
        let e = RtoEstimator::default();
        assert!(e.rto().as_secs() >= 1.0);
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_sets_srtt_and_variance() {
        let mut e = RtoEstimator::default();
        e.sample(0.2);
        assert!((e.srtt().unwrap() - 0.2).abs() < 1e-9);
        // RTO = srtt + 4*rttvar = 0.2 + 4*0.1 = 0.6, clamped to min_rto 1.0.
        assert!((e.rto().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_converges_towards_stable_rtt() {
        let mut e = RtoEstimator::new(0.1, 64.0, 6);
        for _ in 0..100 {
            e.sample(0.25);
        }
        assert!((e.srtt().unwrap() - 0.25).abs() < 1e-3);
        // With zero variance the RTO approaches srtt + small floor, above min.
        assert!(e.rto().as_secs() < 0.4);
    }

    #[test]
    fn backoff_doubles_and_is_cleared_by_samples() {
        let mut e = RtoEstimator::new(0.5, 64.0, 6);
        e.sample(0.5);
        let base = e.rto().as_secs();
        e.back_off();
        let once = e.rto().as_secs();
        e.back_off();
        let twice = e.rto().as_secs();
        assert!(once >= 2.0 * base - 1e-9);
        assert!(twice >= 2.0 * once - 1e-9);
        assert_eq!(e.backoff_exponent(), 2);
        e.sample(0.5);
        assert_eq!(e.backoff_exponent(), 0);
        // Back-off cleared: the RTO returns to the un-backed-off scale
        // (the variance term shrinks slightly with each consistent sample).
        assert!(e.rto().as_secs() <= base + 1e-9);
        assert!(e.rto().as_secs() < once / 2.0 + 1e-9);
    }

    #[test]
    fn rto_respects_maximum() {
        let mut e = RtoEstimator::new(1.0, 8.0, 10);
        e.sample(3.0);
        for _ in 0..10 {
            e.back_off();
        }
        assert!(e.rto().as_secs() <= 8.0);
    }

    #[test]
    fn negative_samples_are_clamped() {
        let mut e = RtoEstimator::default();
        e.sample(-5.0);
        assert!(e.srtt().unwrap() >= 0.0);
        assert!(e.rto().as_secs() >= 1.0);
    }
}
