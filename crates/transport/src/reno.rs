//! Reno congestion control.
//!
//! The controller tracks the congestion window (`cwnd`) and slow-start
//! threshold (`ssthresh`) in units of segments, moving between slow start,
//! congestion avoidance and fast recovery exactly as the classic Reno
//! algorithm does:
//!
//! * slow start — `cwnd += 1` per new ACK while `cwnd < ssthresh`;
//! * congestion avoidance — `cwnd += 1/cwnd` per new ACK;
//! * fast retransmit/recovery — on the third duplicate ACK, halve the window,
//!   retransmit the missing segment and inflate the window by one segment per
//!   further duplicate ACK until a new ACK deflates it back to `ssthresh`;
//! * timeout — `ssthresh = flight/2`, `cwnd = 1`, back to slow start.

use serde::{Deserialize, Serialize};

/// The congestion-control phase the sender is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionState {
    /// Exponential window growth.
    SlowStart,
    /// Linear window growth.
    CongestionAvoidance,
    /// Recovering from a fast retransmit; the window is temporarily inflated.
    FastRecovery,
}

/// Reno congestion controller (window arithmetic only — no clocks, no I/O).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenoController {
    cwnd: f64,
    ssthresh: f64,
    receiver_window: f64,
    state: CongestionState,
    /// Window value to restore when fast recovery completes.
    recovery_ssthresh: f64,
    /// Counters for diagnostics.
    fast_retransmits: u64,
    timeouts: u64,
}

impl RenoController {
    /// New controller.
    pub fn new(initial_cwnd: f64, initial_ssthresh: f64, receiver_window: f64) -> Self {
        RenoController {
            cwnd: initial_cwnd.max(1.0),
            ssthresh: initial_ssthresh.max(2.0),
            receiver_window: receiver_window.max(1.0),
            state: CongestionState::SlowStart,
            recovery_ssthresh: initial_ssthresh,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window, in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold, in segments.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Current phase.
    pub fn state(&self) -> CongestionState {
        self.state
    }

    /// Usable window in whole segments: `min(cwnd, receiver window)`.
    pub fn usable_window(&self) -> u64 {
        self.cwnd.min(self.receiver_window).floor().max(1.0) as u64
    }

    /// Number of fast retransmits performed.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// Number of retransmission timeouts taken.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// A new (window-advancing) ACK arrived.
    pub fn on_new_ack(&mut self) {
        match self.state {
            CongestionState::FastRecovery => {
                // Recovery complete: deflate to ssthresh and continue in
                // congestion avoidance.
                self.cwnd = self.recovery_ssthresh;
                self.state = CongestionState::CongestionAvoidance;
            }
            CongestionState::SlowStart => {
                self.cwnd += 1.0;
                if self.cwnd >= self.ssthresh {
                    self.state = CongestionState::CongestionAvoidance;
                }
            }
            CongestionState::CongestionAvoidance => {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
    }

    /// A duplicate ACK beyond the fast-retransmit threshold arrived while in
    /// fast recovery: inflate the window by one segment.
    pub fn on_extra_dupack(&mut self) {
        if self.state == CongestionState::FastRecovery {
            self.cwnd += 1.0;
        }
    }

    /// The duplicate-ACK threshold was crossed: enter fast recovery.
    /// `flight_segments` is the amount of outstanding data in segments.
    pub fn on_fast_retransmit(&mut self, flight_segments: f64) {
        self.fast_retransmits += 1;
        self.ssthresh = (flight_segments / 2.0).max(2.0);
        self.recovery_ssthresh = self.ssthresh;
        // Window = ssthresh + 3 (the three duplicate ACKs that triggered us).
        self.cwnd = self.ssthresh + 3.0;
        self.state = CongestionState::FastRecovery;
    }

    /// The retransmission timer expired.
    pub fn on_timeout(&mut self, flight_segments: f64) {
        self.timeouts += 1;
        self.ssthresh = (flight_segments / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.state = CongestionState::SlowStart;
    }
}

impl Default for RenoController {
    fn default() -> Self {
        RenoController::new(1.0, 32.0, 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = RenoController::new(1.0, 64.0, 128.0);
        assert_eq!(c.state(), CongestionState::SlowStart);
        // One ACK per outstanding segment: after acking a full window the
        // window roughly doubles.
        for _ in 0..4 {
            c.on_new_ack();
        }
        assert!((c.cwnd() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn transitions_to_congestion_avoidance_at_ssthresh() {
        let mut c = RenoController::new(1.0, 4.0, 64.0);
        for _ in 0..3 {
            c.on_new_ack();
        }
        assert_eq!(c.state(), CongestionState::CongestionAvoidance);
        let before = c.cwnd();
        c.on_new_ack();
        // Linear growth: roughly +1/cwnd.
        assert!(c.cwnd() - before < 1.0);
        assert!(c.cwnd() > before);
    }

    #[test]
    fn fast_retransmit_halves_window_and_recovery_deflates() {
        let mut c = RenoController::new(1.0, 8.0, 64.0);
        for _ in 0..16 {
            c.on_new_ack();
        }
        let flight = c.cwnd();
        c.on_fast_retransmit(flight);
        assert_eq!(c.state(), CongestionState::FastRecovery);
        assert!((c.ssthresh() - flight / 2.0).abs() < 1e-9);
        assert!((c.cwnd() - (flight / 2.0 + 3.0)).abs() < 1e-9);
        assert_eq!(c.fast_retransmits(), 1);
        // Extra dupacks inflate.
        c.on_extra_dupack();
        assert!((c.cwnd() - (flight / 2.0 + 4.0)).abs() < 1e-9);
        // New ACK ends recovery at ssthresh, in congestion avoidance.
        c.on_new_ack();
        assert_eq!(c.state(), CongestionState::CongestionAvoidance);
        assert!((c.cwnd() - flight / 2.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut c = RenoController::new(1.0, 8.0, 64.0);
        for _ in 0..20 {
            c.on_new_ack();
        }
        let flight = c.cwnd();
        c.on_timeout(flight);
        assert_eq!(c.state(), CongestionState::SlowStart);
        assert!((c.cwnd() - 1.0).abs() < 1e-9);
        assert!((c.ssthresh() - flight / 2.0).abs() < 1e-9);
        assert_eq!(c.timeouts(), 1);
    }

    #[test]
    fn usable_window_respects_receiver_window() {
        let mut c = RenoController::new(1.0, 1000.0, 8.0);
        for _ in 0..100 {
            c.on_new_ack();
        }
        assert_eq!(c.usable_window(), 8);
    }

    #[test]
    fn ssthresh_never_collapses_below_two() {
        let mut c = RenoController::default();
        c.on_timeout(1.0);
        assert!(c.ssthresh() >= 2.0);
        c.on_fast_retransmit(1.0);
        assert!(c.ssthresh() >= 2.0);
    }

    #[test]
    fn extra_dupacks_outside_recovery_are_ignored() {
        let mut c = RenoController::default();
        let before = c.cwnd();
        c.on_extra_dupack();
        assert_eq!(c.cwnd(), before);
    }
}
