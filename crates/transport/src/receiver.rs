//! The TCP receiving endpoint.
//!
//! Generates cumulative acknowledgements and buffers out-of-order segments.
//! Every data segment triggers an immediate ACK (no delayed ACKs), so a gap
//! in the sequence space produces the duplicate-ACK train that drives the
//! sender's fast retransmit — and, for concurrent multipath, the spurious
//! congestion-control reactions the paper's related work warns about.

use manet_wire::{ConnectionId, TcpSegment};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics the receiver exposes for the experiment metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiverStats {
    /// Data segments received (including duplicates and out-of-order ones).
    pub segments_received: u64,
    /// Distinct in-order payload bytes delivered to the application.
    pub bytes_delivered: u64,
    /// Segments that arrived out of order (a gap existed below them).
    pub out_of_order: u64,
    /// Duplicate segments (entirely below the cumulative ACK point).
    pub duplicates: u64,
    /// Acknowledgements generated.
    pub acks_sent: u64,
}

/// The receiving half of one TCP connection.
#[derive(Debug)]
pub struct TcpReceiver {
    conn: ConnectionId,
    /// Next byte expected in order.
    rcv_nxt: u64,
    /// Out-of-order segments waiting for the gap to fill: start -> end.
    pending: BTreeMap<u64, u64>,
    stats: ReceiverStats,
}

impl TcpReceiver {
    /// New receiver for connection `conn`.
    pub fn new(conn: ConnectionId) -> Self {
        TcpReceiver {
            conn,
            rcv_nxt: 0,
            pending: BTreeMap::new(),
            stats: ReceiverStats::default(),
        }
    }

    /// The connection this receiver belongs to.
    pub fn connection(&self) -> ConnectionId {
        self.conn
    }

    /// Next in-order byte expected (the cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Receiver statistics.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Process a data segment; returns the acknowledgement to send back.
    pub fn on_segment(&mut self, segment: &TcpSegment) -> TcpSegment {
        debug_assert_eq!(segment.conn, self.conn);
        self.stats.segments_received += 1;
        let start = segment.seq;
        let end = segment.end_seq();
        if end <= self.rcv_nxt {
            // Entirely old data.
            self.stats.duplicates += 1;
        } else if start > self.rcv_nxt {
            // A gap exists: buffer the segment and emit a duplicate ACK.
            self.stats.out_of_order += 1;
            let entry = self.pending.entry(start).or_insert(end);
            *entry = (*entry).max(end);
        } else {
            // In-order (possibly partially overlapping) data: advance.
            self.stats.bytes_delivered += end - self.rcv_nxt;
            self.rcv_nxt = end;
            // Pull any buffered segments that are now contiguous.
            while let Some((&s, &e)) = self.pending.range(..=self.rcv_nxt).next_back() {
                if s > self.rcv_nxt {
                    break;
                }
                self.pending.remove(&s);
                if e > self.rcv_nxt {
                    self.stats.bytes_delivered += e - self.rcv_nxt;
                    self.rcv_nxt = e;
                }
            }
        }
        self.stats.acks_sent += 1;
        TcpSegment::pure_ack(self.conn, self.rcv_nxt)
    }

    /// Number of buffered (out-of-order) byte ranges.
    pub fn pending_ranges(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONN: ConnectionId = ConnectionId(7);

    fn data(seq: u64, len: u32) -> TcpSegment {
        TcpSegment::data(CONN, seq, 0, len)
    }

    #[test]
    fn in_order_segments_advance_the_ack_point() {
        let mut r = TcpReceiver::new(CONN);
        assert_eq!(r.on_segment(&data(0, 100)).ack, 100);
        assert_eq!(r.on_segment(&data(100, 100)).ack, 200);
        assert_eq!(r.stats().bytes_delivered, 200);
        assert_eq!(r.stats().out_of_order, 0);
        assert_eq!(r.pending_ranges(), 0);
    }

    #[test]
    fn gaps_generate_duplicate_acks_until_filled() {
        let mut r = TcpReceiver::new(CONN);
        assert_eq!(r.on_segment(&data(0, 100)).ack, 100);
        // Segment 100..200 lost; 200..300 and 300..400 arrive.
        assert_eq!(r.on_segment(&data(200, 100)).ack, 100);
        assert_eq!(r.on_segment(&data(300, 100)).ack, 100);
        assert_eq!(r.stats().out_of_order, 2);
        assert_eq!(r.pending_ranges(), 2);
        // The retransmission fills the gap and the ACK jumps to 400.
        assert_eq!(r.on_segment(&data(100, 100)).ack, 400);
        assert_eq!(r.stats().bytes_delivered, 400);
        assert_eq!(r.pending_ranges(), 0);
    }

    #[test]
    fn duplicates_do_not_inflate_delivery() {
        let mut r = TcpReceiver::new(CONN);
        let _ = r.on_segment(&data(0, 100));
        let ack = r.on_segment(&data(0, 100));
        assert_eq!(ack.ack, 100);
        assert_eq!(r.stats().duplicates, 1);
        assert_eq!(r.stats().bytes_delivered, 100);
    }

    #[test]
    fn overlapping_segment_only_delivers_new_bytes() {
        let mut r = TcpReceiver::new(CONN);
        let _ = r.on_segment(&data(0, 100));
        // Segment covering 50..250 only contributes 150 new bytes.
        let ack = r.on_segment(&data(50, 200));
        assert_eq!(ack.ack, 250);
        assert_eq!(r.stats().bytes_delivered, 250);
    }

    #[test]
    fn out_of_order_buffer_merges_contiguous_ranges() {
        let mut r = TcpReceiver::new(CONN);
        let _ = r.on_segment(&data(100, 100)); // gap: 0..100 missing
        let _ = r.on_segment(&data(200, 100));
        let _ = r.on_segment(&data(400, 100)); // second gap at 300..400
        assert_eq!(r.pending_ranges(), 3);
        let ack = r.on_segment(&data(0, 100));
        // 0..300 is now contiguous; 400..500 still waits for 300..400.
        assert_eq!(ack.ack, 300);
        assert_eq!(r.pending_ranges(), 1);
        let ack = r.on_segment(&data(300, 100));
        assert_eq!(ack.ack, 500);
    }
}
