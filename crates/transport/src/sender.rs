//! The TCP Reno sending endpoint.
//!
//! The sender is *sans-io*: the node stack calls it with events (`open the
//! window`, `an ACK arrived`, `the retransmission timer fired`) and the sender
//! answers with a [`TcpOutcome`] listing the segments to hand to the routing
//! layer plus the retransmission deadline to (re)arm.  The default traffic
//! model is the paper's FTP-like bulk transfer (an unbounded backlog of
//! application data); a [`FlowProfile`] adds a start time, a byte budget and
//! the on-off / request-response shapes used by multi-flow scenarios.  When a
//! shape gates new data, the sender asks for an application wake-up
//! ([`TcpOutcome::wakeup`]) instead of polling.

use crate::config::{FlowProfile, FlowShape, TcpConfig};
use crate::reno::{CongestionState, RenoController};
use crate::rto::RtoEstimator;
use manet_netsim::{Duration, SimTime};
use manet_wire::{ConnectionId, TcpSegment};
use std::collections::BTreeMap;

/// Identifies the retransmission timer the stack should arm.
///
/// The sender bumps the generation every time the timer must be re-armed;
/// stale timer firings (older generations) are ignored, which matches the
/// simulator's non-cancellable timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    /// Generation of the timer; echo it back in `on_timer`.
    pub generation: u64,
    /// Delay after which the timer should fire.
    pub delay: Duration,
}

/// What the stack must do after driving the sender.
#[derive(Debug, Default)]
pub struct TcpOutcome {
    /// Segments to transmit, in order.
    pub segments: Vec<TcpSegment>,
    /// Retransmission timer to arm (if any).
    pub timer: Option<TimerHandle>,
    /// Application wake-up to schedule: call [`TcpSender::on_wakeup`] after
    /// this delay (on-off phase changes, request-response think times).
    /// Wake-ups are idempotent — a stale or duplicate firing produces no
    /// segments — so the stack needs no generation bookkeeping for them.
    pub wakeup: Option<Duration>,
}

/// Book-keeping for one in-flight segment.
#[derive(Debug, Clone, Copy)]
struct InFlightSegment {
    len: u32,
    sent_at: SimTime,
    retransmitted: bool,
}

/// The sending half of one TCP Reno connection.
#[derive(Debug)]
pub struct TcpSender {
    conn: ConnectionId,
    config: TcpConfig,
    profile: FlowProfile,
    reno: RenoController,
    rto: RtoEstimator,
    /// Next sequence number to send (bytes).
    snd_nxt: u64,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// In-flight segments keyed by their starting sequence number.
    in_flight: BTreeMap<u64, InFlightSegment>,
    /// Duplicate-ACK counter for the current `snd_una`.
    dupacks: u32,
    /// Highest sequence outstanding when fast recovery started (new ACKs above
    /// this end recovery).
    recovery_point: u64,
    /// Current retransmission-timer generation.
    timer_generation: u64,
    /// Whether a timer is conceptually armed.
    timer_armed: bool,
    // --- flow shaping -----------------------------------------------------
    /// Request-response: bytes the application has released for sending so
    /// far (ignored by the other shapes).
    released: u64,
    /// Request-response: when the next request is released (think timer).
    next_release_at: Option<SimTime>,
    /// Absolute time of the application wake-up currently scheduled, to
    /// de-duplicate [`TcpOutcome::wakeup`] requests.
    wakeup_at: Option<SimTime>,
    /// When the whole byte budget was acknowledged (budgeted flows only).
    completed_at: Option<SimTime>,
    // --- statistics -------------------------------------------------------
    segments_sent: u64,
    retransmissions: u64,
    bytes_acked: u64,
}

impl TcpSender {
    /// New bulk-transfer sender for connection `conn` (the paper's unbounded
    /// FTP source; equivalent to [`TcpSender::with_profile`] with the default
    /// profile).
    pub fn new(conn: ConnectionId, config: TcpConfig) -> Self {
        Self::with_profile(conn, config, FlowProfile::default())
    }

    /// New sender for connection `conn` with an explicit flow profile (start
    /// time, byte budget, traffic shape).
    pub fn with_profile(conn: ConnectionId, config: TcpConfig, profile: FlowProfile) -> Self {
        config.validate().expect("invalid TCP configuration");
        profile.validate().expect("invalid flow profile");
        TcpSender {
            conn,
            reno: RenoController::new(
                config.initial_cwnd,
                config.initial_ssthresh,
                config.receiver_window,
            ),
            rto: RtoEstimator::new(config.min_rto, config.max_rto, config.max_backoff_exponent),
            config,
            profile,
            snd_nxt: 0,
            snd_una: 0,
            in_flight: BTreeMap::new(),
            dupacks: 0,
            recovery_point: 0,
            timer_generation: 0,
            timer_armed: false,
            released: 0,
            next_release_at: None,
            wakeup_at: None,
            completed_at: None,
            segments_sent: 0,
            retransmissions: 0,
            bytes_acked: 0,
        }
    }

    /// The connection this sender belongs to.
    pub fn connection(&self) -> ConnectionId {
        self.conn
    }

    /// The flow profile this sender was built with.
    pub fn profile(&self) -> FlowProfile {
        self.profile
    }

    /// When the flow's whole byte budget was acknowledged end-to-end
    /// (`None` while incomplete, and always `None` for unbounded flows).
    pub fn completion_time(&self) -> Option<SimTime> {
        self.completed_at
    }

    /// The flow's byte budget (`u64::MAX` when unbounded).
    fn budget(&self) -> u64 {
        self.profile.bytes.unwrap_or(u64::MAX)
    }

    /// Bytes acknowledged end-to-end so far.
    pub fn bytes_acked(&self) -> u64 {
        self.bytes_acked
    }

    /// Data segments transmitted (including retransmissions).
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Retransmitted segments.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Retransmission timeouts taken.
    pub fn timeouts(&self) -> u64 {
        self.reno.timeouts()
    }

    /// Fast retransmits performed.
    pub fn fast_retransmits(&self) -> u64 {
        self.reno.fast_retransmits()
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.reno.cwnd()
    }

    /// Current congestion-control phase.
    pub fn state(&self) -> CongestionState {
        self.reno.state()
    }

    /// Smoothed RTT estimate, if available (seconds).
    pub fn srtt(&self) -> Option<f64> {
        self.rto.srtt()
    }

    /// Outstanding (sent but unacknowledged) bytes.
    pub fn flight_bytes(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn flight_segments(&self) -> f64 {
        self.flight_bytes() as f64 / f64::from(self.config.mss)
    }

    fn arm_timer(&mut self) -> Option<TimerHandle> {
        self.timer_generation += 1;
        self.timer_armed = true;
        Some(TimerHandle {
            generation: self.timer_generation,
            delay: self.rto.rto(),
        })
    }

    /// Highest sequence number the application currently offers for
    /// transmission, applying the byte budget and the flow shape's gate.
    /// May request a wake-up into `out` when the gate is closed but more
    /// data is due later.
    fn offered_limit(&mut self, now: SimTime, out: &mut TcpOutcome) -> u64 {
        let budget = self.budget();
        match self.profile.shape {
            FlowShape::Bulk => budget,
            FlowShape::OnOff { on_secs, off_secs } => {
                let elapsed = now.saturating_since(SimTime::from_secs(self.profile.start));
                let cycle = on_secs + off_secs;
                let cycles = (elapsed.as_secs() / cycle).floor();
                let pos = elapsed.as_secs() - cycles * cycle;
                if pos < on_secs {
                    budget
                } else {
                    // Off phase: nothing new until the next on phase opens.
                    if self.snd_nxt < budget {
                        // The wake-up must be strictly in the future: exactly
                        // at a cycle boundary, floating-point rounding of
                        // `elapsed / cycle` can put `now` in the off phase
                        // with a recomputed boundary equal to `now`, and a
                        // zero-delay wake-up would re-enter this branch at
                        // the same instant forever.
                        let mut next_on =
                            SimTime::from_secs(self.profile.start + (cycles + 1.0) * cycle);
                        if next_on <= now {
                            next_on =
                                SimTime::from_secs(self.profile.start + (cycles + 2.0) * cycle);
                        }
                        self.request_wakeup(now, next_on, out);
                    }
                    self.snd_nxt
                }
            }
            FlowShape::RequestResponse { request_bytes, .. } => {
                if let Some(at) = self.next_release_at {
                    if now >= at {
                        self.next_release_at = None;
                        self.released = self.released.saturating_add(request_bytes).min(budget);
                    }
                }
                if self.released == 0 {
                    // First request opens with the flow.
                    self.released = request_bytes.min(budget);
                }
                self.released
            }
        }
    }

    /// Ask the stack for one application wake-up at `at`, de-duplicating
    /// against an already-pending one at the same instant.
    fn request_wakeup(&mut self, now: SimTime, at: SimTime, out: &mut TcpOutcome) {
        if self.wakeup_at == Some(at) && at > now {
            return; // already scheduled
        }
        self.wakeup_at = Some(at);
        out.wakeup = Some(at.saturating_since(now));
    }

    /// Fill the window with new data segments up to the application's offered
    /// limit (a plain bulk source never runs out).  Call at connection start
    /// and whenever the window may have opened.
    pub fn pump(&mut self, now: SimTime) -> TcpOutcome {
        let mut out = TcpOutcome::default();
        let offer = self.offered_limit(now, &mut out);
        let window_bytes = self.reno.usable_window() * u64::from(self.config.mss);
        while self.flight_bytes() + u64::from(self.config.mss) <= window_bytes
            && self.snd_nxt < offer
        {
            let seq = self.snd_nxt;
            let len = (u64::from(self.config.mss).min(offer - seq)) as u32;
            let seg = TcpSegment::data(self.conn, seq, 0, len);
            self.in_flight.insert(
                seq,
                InFlightSegment {
                    len,
                    sent_at: now,
                    retransmitted: false,
                },
            );
            self.snd_nxt += u64::from(len);
            self.segments_sent += 1;
            out.segments.push(seg);
        }
        // A request-response flow whose current request is fully acknowledged
        // schedules the think-time release of the next one.
        if let FlowShape::RequestResponse { think_secs, .. } = self.profile.shape {
            if self.snd_una == self.released
                && self.released < self.budget()
                && self.next_release_at.is_none()
            {
                let at = now + Duration::from_secs(think_secs);
                self.next_release_at = Some(at);
                self.request_wakeup(now, at, &mut out);
            }
        }
        if !out.segments.is_empty() && !self.timer_armed {
            out.timer = self.arm_timer();
        }
        out
    }

    /// An application wake-up requested through [`TcpOutcome::wakeup`] fired.
    /// Idempotent: a duplicate or stale firing finds the gate unchanged and
    /// produces no segments.
    pub fn on_wakeup(&mut self, now: SimTime) -> TcpOutcome {
        // The pending wake-up (if this is it) has fired; forget it so a new
        // one at the same instant is never de-duplicated against it.
        if self.wakeup_at.is_some_and(|at| now >= at) {
            self.wakeup_at = None;
        }
        self.pump(now)
    }

    /// Process an incoming (cumulative) acknowledgement.
    pub fn on_ack(&mut self, segment: &TcpSegment, now: SimTime) -> TcpOutcome {
        debug_assert_eq!(segment.conn, self.conn);
        let mut out = TcpOutcome::default();
        if !segment.flags.ack {
            return out;
        }
        let ack = segment.ack;
        if ack > self.snd_una {
            // New data acknowledged.
            let newly_acked = ack - self.snd_una;
            self.bytes_acked += newly_acked;
            // RTT sample from the oldest segment this ACK covers, if it was
            // never retransmitted (Karn's rule).
            let covered: Vec<u64> = self.in_flight.range(..ack).map(|(&seq, _)| seq).collect();
            let mut sampled = false;
            for seq in covered {
                if let Some(info) = self.in_flight.remove(&seq) {
                    if !sampled && !info.retransmitted {
                        self.rto
                            .sample(now.saturating_since(info.sent_at).as_secs());
                        sampled = true;
                    }
                }
            }
            self.snd_una = ack;
            self.dupacks = 0;
            if self.completed_at.is_none() && self.snd_una >= self.budget() {
                self.completed_at = Some(now);
            }
            if self.reno.state() == CongestionState::FastRecovery && ack < self.recovery_point {
                // Partial ACK during recovery: retransmit the next missing
                // segment straight away (NewReno-style partial-ACK handling
                // keeps Reno from stalling on multiple losses in one window).
                out.segments.push(self.retransmit_front(now));
            } else {
                self.reno.on_new_ack();
            }
            // Grow / refill the window.
            let mut pumped = self.pump(now);
            out.segments.append(&mut pumped.segments);
            out.wakeup = out.wakeup.or(pumped.wakeup);
            // Re-arm the timer for remaining in-flight data.
            if self.flight_bytes() > 0 {
                out.timer = self.arm_timer();
            } else {
                self.timer_armed = false;
            }
        } else if ack == self.snd_una && self.flight_bytes() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.dupacks == self.config.dupack_threshold {
                self.recovery_point = self.snd_nxt;
                self.reno.on_fast_retransmit(self.flight_segments());
                out.segments.push(self.retransmit_front(now));
                out.timer = self.arm_timer();
            } else if self.dupacks > self.config.dupack_threshold {
                self.reno.on_extra_dupack();
                let mut pumped = self.pump(now);
                out.segments.append(&mut pumped.segments);
                out.wakeup = out.wakeup.or(pumped.wakeup);
            }
        }
        out
    }

    /// Retransmit the oldest unacknowledged segment.
    fn retransmit_front(&mut self, now: SimTime) -> TcpSegment {
        let seq = self.snd_una;
        let len = self
            .in_flight
            .get(&seq)
            .map(|i| i.len)
            .unwrap_or(self.config.mss);
        self.in_flight.insert(
            seq,
            InFlightSegment {
                len,
                sent_at: now,
                retransmitted: true,
            },
        );
        self.segments_sent += 1;
        self.retransmissions += 1;
        TcpSegment::data(self.conn, seq, 0, len)
    }

    /// The retransmission timer with `generation` fired.
    pub fn on_timer(&mut self, generation: u64, now: SimTime) -> TcpOutcome {
        let mut out = TcpOutcome::default();
        if generation != self.timer_generation || !self.timer_armed {
            return out; // stale timer
        }
        if self.flight_bytes() == 0 {
            self.timer_armed = false;
            return out;
        }
        // Timeout: collapse the window, back off the RTO, retransmit the
        // oldest segment, and mark everything in flight as retransmitted so
        // Karn's rule skips their RTT samples.
        self.reno.on_timeout(self.flight_segments());
        self.rto.back_off();
        self.dupacks = 0;
        for info in self.in_flight.values_mut() {
            info.retransmitted = true;
        }
        out.segments.push(self.retransmit_front(now));
        out.timer = self.arm_timer();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONN: ConnectionId = ConnectionId(1);

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ack(n: u64) -> TcpSegment {
        TcpSegment::pure_ack(CONN, n)
    }

    fn sender() -> TcpSender {
        TcpSender::new(CONN, TcpConfig::default())
    }

    #[test]
    fn initial_pump_sends_one_window() {
        let mut s = sender();
        let out = s.pump(t(0.0));
        // Initial cwnd is one segment.
        assert_eq!(out.segments.len(), 1);
        assert!(out.timer.is_some());
        assert_eq!(s.flight_bytes(), u64::from(TcpConfig::default().mss));
        // A second pump with a full window sends nothing.
        assert!(s.pump(t(0.1)).segments.is_empty());
    }

    #[test]
    fn acks_open_the_window_exponentially() {
        let mut s = sender();
        let mss = u64::from(TcpConfig::default().mss);
        let _ = s.pump(t(0.0));
        let out = s.on_ack(&ack(mss), t(0.2));
        // Slow start: cwnd 1 -> 2, so two new segments go out.
        assert_eq!(out.segments.len(), 2);
        assert!(s.cwnd() >= 2.0);
        assert_eq!(s.bytes_acked(), mss);
        assert!(s.srtt().is_some());
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = sender();
        let mss = u64::from(TcpConfig::default().mss);
        // Grow the window a bit first.
        let _ = s.pump(t(0.0));
        let _ = s.on_ack(&ack(mss), t(0.1));
        let _ = s.on_ack(&ack(2 * mss), t(0.2));
        let _ = s.on_ack(&ack(3 * mss), t(0.3));
        assert!(
            s.flight_bytes() >= 3 * mss,
            "need at least 3 segments in flight"
        );
        // Now the receiver keeps acking 3*mss (segment 3 was lost).
        let _ = s.on_ack(&ack(3 * mss), t(0.4));
        let _ = s.on_ack(&ack(3 * mss), t(0.45));
        let out = s.on_ack(&ack(3 * mss), t(0.5));
        assert_eq!(s.fast_retransmits(), 1);
        assert_eq!(s.retransmissions(), 1);
        // The retransmission resends the missing segment at snd_una = 3*mss.
        assert_eq!(out.segments[0].seq, 3 * mss);
        assert_eq!(s.state(), CongestionState::FastRecovery);
    }

    #[test]
    fn timeout_retransmits_and_collapses_window() {
        let mut s = sender();
        let mss = u64::from(TcpConfig::default().mss);
        let first = s.pump(t(0.0));
        let generation = first.timer.unwrap().generation;
        let out = s.on_timer(generation, t(2.0));
        assert_eq!(out.segments.len(), 1);
        assert_eq!(out.segments[0].seq, 0);
        assert_eq!(s.timeouts(), 1);
        assert!((s.cwnd() - 1.0).abs() < 1e-9);
        // The ACK that finally arrives does not take an RTT sample from the
        // retransmitted segment (Karn) but still advances the window.
        let out = s.on_ack(&ack(mss), t(3.0));
        assert!(!out.segments.is_empty());
        assert_eq!(s.bytes_acked(), mss);
    }

    #[test]
    fn stale_timer_generations_are_ignored() {
        let mut s = sender();
        let first = s.pump(t(0.0));
        let old_generation = first.timer.unwrap().generation;
        let mss = u64::from(TcpConfig::default().mss);
        // The ACK re-arms the timer with a newer generation.
        let _ = s.on_ack(&ack(mss), t(0.1));
        let out = s.on_timer(old_generation, t(5.0));
        assert!(out.segments.is_empty());
        assert_eq!(s.timeouts(), 0);
    }

    #[test]
    fn duplicate_acks_with_nothing_in_flight_are_ignored() {
        let mut s = sender();
        let out = s.on_ack(&ack(0), t(0.0));
        assert!(out.segments.is_empty());
        assert_eq!(s.fast_retransmits(), 0);
    }

    #[test]
    fn byte_budget_caps_the_transfer_and_reports_completion() {
        let mss = u64::from(TcpConfig::default().mss);
        let mut s = TcpSender::with_profile(
            CONN,
            TcpConfig::default(),
            FlowProfile {
                bytes: Some(2 * mss + 500),
                ..Default::default()
            },
        );
        // Drive to completion against an ideal receiver.
        let mut now = 0.0;
        let mut acked = 0u64;
        let mut pending = s.pump(t(now)).segments;
        for _ in 0..20 {
            now += 0.05;
            let highest = pending.iter().map(|g| g.end_seq()).max().unwrap_or(acked);
            acked = acked.max(highest);
            pending.clear();
            pending.extend(s.on_ack(&ack(acked), t(now)).segments);
        }
        // Exactly the budget was sent (the last segment is the 500-byte tail)
        // and the completion time is the ACK that covered the final byte.
        assert_eq!(s.bytes_acked(), 2 * mss + 500);
        assert_eq!(s.flight_bytes(), 0);
        assert!(s.completion_time().is_some());
        assert_eq!(s.retransmissions(), 0);
        // An unbounded sender never completes.
        let mut unbounded = sender();
        let _ = unbounded.pump(t(0.0));
        assert_eq!(unbounded.completion_time(), None);
    }

    #[test]
    fn on_off_flow_gates_new_data_and_requests_a_wakeup() {
        let mut s = TcpSender::with_profile(
            CONN,
            TcpConfig::default(),
            FlowProfile {
                shape: FlowShape::OnOff {
                    on_secs: 1.0,
                    off_secs: 2.0,
                },
                ..Default::default()
            },
        );
        // On phase: sends like bulk.
        let out = s.pump(t(0.5));
        assert_eq!(out.segments.len(), 1);
        assert!(out.wakeup.is_none());
        let mss = u64::from(TcpConfig::default().mss);
        // Off phase: the ACK opens the window but the gate is closed, so no
        // new segments go out and a wake-up for the next on phase (t=3) is
        // requested instead.
        let out = s.on_ack(&ack(mss), t(1.5));
        assert!(out.segments.is_empty());
        let wake = out.wakeup.expect("off phase requests a wakeup");
        assert!((wake.as_secs() - 1.5).abs() < 1e-9, "wake at t=3, now=1.5");
        // Duplicate gate hits do not re-request the same wakeup.
        assert!(s.pump(t(1.6)).wakeup.is_none());
        // The wakeup fires in the next on phase and sending resumes.
        let out = s.on_wakeup(t(3.0));
        assert!(!out.segments.is_empty());
    }

    #[test]
    fn on_off_wakeups_always_make_progress_at_cycle_boundaries() {
        // Regression: floating-point rounding of `elapsed / cycle` exactly at
        // a cycle boundary can classify `now` as off-phase with a recomputed
        // boundary equal to `now`; the wake-up must then point at the *next*
        // cycle, never at `now` itself (a zero-delay wake-up would loop the
        // simulation forever at one instant).  Emulate the stack: follow
        // every requested wake-up and require strictly positive delays while
        // walking several thousand cycles.
        let mut s = TcpSender::with_profile(
            CONN,
            TcpConfig::default(),
            FlowProfile {
                shape: FlowShape::OnOff {
                    on_secs: 0.1,
                    off_secs: 0.1,
                },
                ..Default::default()
            },
        );
        let mut now = SimTime::ZERO;
        let mut wakeups = 0u32;
        let out = s.pump(now);
        let mut pending = out.wakeup;
        while wakeups < 5_000 {
            let Some(delay) = pending else {
                // No wake-up requested (on phase, window full): nudge time
                // forward to the next off phase probe.
                now += Duration::from_secs(0.15);
                pending = s.on_wakeup(now).wakeup;
                continue;
            };
            assert!(
                delay > Duration::ZERO,
                "zero-delay wake-up at t={now:?} would hang the event loop"
            );
            now += delay;
            wakeups += 1;
            pending = s.on_wakeup(now).wakeup;
        }
        assert!(
            now.as_secs() > 100.0,
            "the walk must advance simulated time"
        );
    }

    #[test]
    fn request_response_flow_thinks_between_requests() {
        let mss = u64::from(TcpConfig::default().mss);
        let mut s = TcpSender::with_profile(
            CONN,
            TcpConfig::default(),
            FlowProfile {
                shape: FlowShape::RequestResponse {
                    request_bytes: mss,
                    think_secs: 5.0,
                },
                ..Default::default()
            },
        );
        // First request: one MSS.
        let out = s.pump(t(0.0));
        assert_eq!(out.segments.len(), 1);
        // Fully acknowledged: nothing new, think timer requested.
        let out = s.on_ack(&ack(mss), t(0.2));
        assert!(out.segments.is_empty());
        let wake = out.wakeup.expect("think time requests a wakeup");
        assert!((wake.as_secs() - 5.0).abs() < 1e-9);
        // Waking early keeps the gate shut; at the think deadline the next
        // request is released.
        assert!(s.on_wakeup(t(3.0)).segments.is_empty());
        let out = s.on_wakeup(t(5.2));
        assert_eq!(out.segments.len(), 1);
        assert_eq!(out.segments[0].seq, mss);
    }

    #[test]
    fn bulk_transfer_makes_steady_progress() {
        // Drive the sender against an ideal lossless receiver for a while and
        // confirm it keeps acknowledging new data and growing the window up to
        // the receiver window cap.
        let mut s = sender();
        let mss = u64::from(TcpConfig::default().mss);
        let mut now = 0.0;
        let mut acked = 0u64;
        let mut to_deliver: Vec<TcpSegment> = s.pump(t(now)).segments;
        for _ in 0..200 {
            now += 0.05;
            // Deliver every outstanding segment, then ack cumulatively.
            let highest = to_deliver
                .iter()
                .map(|g| g.end_seq())
                .max()
                .unwrap_or(acked);
            acked = acked.max(highest);
            to_deliver.clear();
            let out = s.on_ack(&ack(acked), t(now));
            to_deliver.extend(out.segments);
        }
        assert!(s.bytes_acked() > 100 * mss);
        assert!(s.cwnd() <= TcpConfig::default().receiver_window + 1.0);
        assert_eq!(s.retransmissions(), 0);
    }
}
