//! Transport-layer parameters: the TCP Reno knobs ([`TcpConfig`]) and the
//! application-level traffic shape of one flow ([`FlowProfile`]).

use manet_wire::sizes::DEFAULT_MSS;
use serde::{Deserialize, Serialize};

/// The application-level send pattern of one flow.
///
/// The paper's evaluation uses a single [`FlowShape::Bulk`] transfer; the
/// other shapes model the traffic mixes of a production deployment (bursty
/// media, request/response RPC) so multi-flow scenarios can stress the
/// routing layer with diverse offered loads.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum FlowShape {
    /// FTP-like bulk transfer: an unbounded backlog of application data
    /// (the paper's traffic model).
    #[default]
    Bulk,
    /// Periodic on/off source: the application offers data during `on_secs`,
    /// then goes silent for `off_secs`, repeating from the flow's start time.
    /// Retransmissions of already-offered data are not gated.
    OnOff {
        /// Length of the sending phase, seconds (> 0).
        on_secs: f64,
        /// Length of the silent phase, seconds (> 0).
        off_secs: f64,
    },
    /// Closed-loop request/response: the application writes `request_bytes`,
    /// waits until every byte is acknowledged, thinks for `think_secs`, then
    /// writes the next request.
    RequestResponse {
        /// Bytes per request (> 0).
        request_bytes: u64,
        /// Idle time between a fully-acknowledged request and the next one,
        /// seconds (>= 0).
        think_secs: f64,
    },
}

/// When a flow starts, what it sends and how much.
///
/// The default profile (`start` 0, [`FlowShape::Bulk`], no byte budget) is
/// exactly the paper's single bulk flow, so single-flow scenarios built from
/// defaults stay byte-identical to the pre-profile transport.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowProfile {
    /// Simulated seconds after run start at which the flow opens.
    pub start: f64,
    /// Application-level send pattern.
    pub shape: FlowShape,
    /// Total byte budget; `None` keeps sending for the whole run.  A flow
    /// with a budget reports a completion time once every budgeted byte is
    /// acknowledged.
    pub bytes: Option<u64>,
}

impl FlowProfile {
    /// Bulk transfer from time 0 with no byte budget (the paper's flow).
    pub fn bulk() -> Self {
        Self::default()
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !self.start.is_finite() || self.start < 0.0 {
            return Err("flow start must be a finite non-negative time".into());
        }
        if let Some(0) = self.bytes {
            return Err("a flow byte budget must be positive".into());
        }
        match self.shape {
            FlowShape::Bulk => {}
            FlowShape::OnOff { on_secs, off_secs } => {
                if !(on_secs > 0.0 && on_secs.is_finite()) {
                    return Err("on-off flows need a positive on_secs".into());
                }
                if !(off_secs > 0.0 && off_secs.is_finite()) {
                    return Err("on-off flows need a positive off_secs".into());
                }
            }
            FlowShape::RequestResponse {
                request_bytes,
                think_secs,
            } => {
                if request_bytes == 0 {
                    return Err("request-response flows need positive request_bytes".into());
                }
                if !(think_secs >= 0.0 && think_secs.is_finite()) {
                    return Err("request-response flows need a non-negative think_secs".into());
                }
            }
        }
        Ok(())
    }
}

/// TCP Reno parameters.
///
/// Defaults follow the classic ns-2 era Reno configuration the paper used:
/// 1000-byte segments, an initial congestion window of one segment, a 64
/// segment receive window, a 1 s minimum / 64 s maximum retransmission
/// timeout and three duplicate ACKs triggering fast retransmit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Receiver window, in segments (caps the usable window).
    pub receiver_window: f64,
    /// Minimum retransmission timeout, seconds.
    pub min_rto: f64,
    /// Maximum retransmission timeout, seconds.
    pub max_rto: f64,
    /// Number of duplicate ACKs that triggers a fast retransmit.
    pub dupack_threshold: u32,
    /// Maximum number of consecutive RTO expirations before the connection is
    /// considered (temporarily) dead; the sender keeps backing off but caps
    /// the exponent here.
    pub max_backoff_exponent: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: DEFAULT_MSS,
            initial_cwnd: 1.0,
            initial_ssthresh: 32.0,
            receiver_window: 64.0,
            min_rto: 1.0,
            max_rto: 64.0,
            dupack_threshold: 3,
            max_backoff_exponent: 6,
        }
    }
}

impl TcpConfig {
    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.initial_cwnd < 1.0 {
            return Err("initial_cwnd must be at least one segment".into());
        }
        if self.receiver_window < 1.0 {
            return Err("receiver_window must be at least one segment".into());
        }
        if self.min_rto <= 0.0 || self.max_rto < self.min_rto {
            return Err("RTO bounds must satisfy 0 < min_rto <= max_rto".into());
        }
        if self.dupack_threshold == 0 {
            return Err("dupack_threshold must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_reno_setup() {
        let c = TcpConfig::default();
        c.validate().unwrap();
        assert_eq!(c.mss, DEFAULT_MSS);
        assert_eq!(c.dupack_threshold, 3);
        assert!(c.min_rto >= 1.0);
    }

    #[test]
    fn default_profile_is_the_paper_bulk_flow() {
        let p = FlowProfile::default();
        p.validate().unwrap();
        assert_eq!(p, FlowProfile::bulk());
        assert_eq!(p.start, 0.0);
        assert_eq!(p.shape, FlowShape::Bulk);
        assert_eq!(p.bytes, None);
    }

    #[test]
    fn profile_validation_rejects_bad_values() {
        let bad = |p: FlowProfile| assert!(p.validate().is_err(), "{p:?}");
        bad(FlowProfile {
            start: -1.0,
            ..Default::default()
        });
        bad(FlowProfile {
            start: f64::NAN,
            ..Default::default()
        });
        bad(FlowProfile {
            bytes: Some(0),
            ..Default::default()
        });
        bad(FlowProfile {
            shape: FlowShape::OnOff {
                on_secs: 0.0,
                off_secs: 1.0,
            },
            ..Default::default()
        });
        bad(FlowProfile {
            shape: FlowShape::OnOff {
                on_secs: 1.0,
                off_secs: 0.0,
            },
            ..Default::default()
        });
        bad(FlowProfile {
            shape: FlowShape::RequestResponse {
                request_bytes: 0,
                think_secs: 1.0,
            },
            ..Default::default()
        });
        bad(FlowProfile {
            shape: FlowShape::RequestResponse {
                request_bytes: 1000,
                think_secs: -0.5,
            },
            ..Default::default()
        });
        FlowProfile {
            start: 3.0,
            shape: FlowShape::OnOff {
                on_secs: 2.0,
                off_secs: 1.0,
            },
            bytes: Some(100_000),
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(TcpConfig {
            mss: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            initial_cwnd: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            receiver_window: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            min_rto: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            max_rto: 0.5,
            min_rto: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            dupack_threshold: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
