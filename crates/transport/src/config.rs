//! Transport-layer parameters.

use manet_wire::sizes::DEFAULT_MSS;
use serde::{Deserialize, Serialize};

/// TCP Reno parameters.
///
/// Defaults follow the classic ns-2 era Reno configuration the paper used:
/// 1000-byte segments, an initial congestion window of one segment, a 64
/// segment receive window, a 1 s minimum / 64 s maximum retransmission
/// timeout and three duplicate ACKs triggering fast retransmit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Receiver window, in segments (caps the usable window).
    pub receiver_window: f64,
    /// Minimum retransmission timeout, seconds.
    pub min_rto: f64,
    /// Maximum retransmission timeout, seconds.
    pub max_rto: f64,
    /// Number of duplicate ACKs that triggers a fast retransmit.
    pub dupack_threshold: u32,
    /// Maximum number of consecutive RTO expirations before the connection is
    /// considered (temporarily) dead; the sender keeps backing off but caps
    /// the exponent here.
    pub max_backoff_exponent: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: DEFAULT_MSS,
            initial_cwnd: 1.0,
            initial_ssthresh: 32.0,
            receiver_window: 64.0,
            min_rto: 1.0,
            max_rto: 64.0,
            dupack_threshold: 3,
            max_backoff_exponent: 6,
        }
    }
}

impl TcpConfig {
    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.initial_cwnd < 1.0 {
            return Err("initial_cwnd must be at least one segment".into());
        }
        if self.receiver_window < 1.0 {
            return Err("receiver_window must be at least one segment".into());
        }
        if self.min_rto <= 0.0 || self.max_rto < self.min_rto {
            return Err("RTO bounds must satisfy 0 < min_rto <= max_rto".into());
        }
        if self.dupack_threshold == 0 {
            return Err("dupack_threshold must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_reno_setup() {
        let c = TcpConfig::default();
        c.validate().unwrap();
        assert_eq!(c.mss, DEFAULT_MSS);
        assert_eq!(c.dupack_threshold, 3);
        assert!(c.min_rto >= 1.0);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(TcpConfig {
            mss: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            initial_cwnd: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            receiver_window: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            min_rto: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            max_rto: 0.5,
            min_rto: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TcpConfig {
            dupack_threshold: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
