//! Property-based tests for the TCP Reno endpoints: reassembly correctness at
//! the receiver and window-arithmetic invariants at the sender / controller.

use manet_netsim::SimTime;
use manet_tcp::{RenoController, RtoEstimator, TcpConfig, TcpReceiver, TcpSender};
use manet_wire::{ConnectionId, TcpSegment};
use proptest::prelude::*;

const CONN: ConnectionId = ConnectionId(1);

proptest! {
    /// Delivering a stream of fixed-size segments in any order yields exactly
    /// the full byte range once every segment has arrived, and the cumulative
    /// ACK never decreases along the way.
    #[test]
    fn receiver_reassembles_any_permutation(order in Just((0u64..20).collect::<Vec<_>>()).prop_shuffle()) {
        let seg_len = 100u32;
        let mut rx = TcpReceiver::new(CONN);
        let mut last_ack = 0u64;
        for &i in &order {
            let seg = TcpSegment::data(CONN, i * u64::from(seg_len), 0, seg_len);
            let ack = rx.on_segment(&seg);
            prop_assert!(ack.ack >= last_ack, "cumulative ACK must never move backwards");
            last_ack = ack.ack;
        }
        prop_assert_eq!(last_ack, 20 * u64::from(seg_len));
        prop_assert_eq!(rx.stats().bytes_delivered, 20 * u64::from(seg_len));
        prop_assert_eq!(rx.pending_ranges(), 0);
    }

    /// Duplicated deliveries never inflate the delivered byte count.
    #[test]
    fn receiver_ignores_duplicates(dups in proptest::collection::vec(0u64..10, 1..40)) {
        let seg_len = 50u32;
        let mut rx = TcpReceiver::new(CONN);
        // Deliver everything once, in order.
        for i in 0..10u64 {
            let _ = rx.on_segment(&TcpSegment::data(CONN, i * u64::from(seg_len), 0, seg_len));
        }
        let delivered = rx.stats().bytes_delivered;
        // Then replay arbitrary duplicates.
        for &i in &dups {
            let _ = rx.on_segment(&TcpSegment::data(CONN, i * u64::from(seg_len), 0, seg_len));
        }
        prop_assert_eq!(rx.stats().bytes_delivered, delivered);
        prop_assert_eq!(rx.rcv_nxt(), delivered);
    }

    /// Under any sequence of ACK / dupACK / timeout events the congestion
    /// window stays at least one segment and ssthresh at least two.
    #[test]
    fn reno_window_never_collapses(events in proptest::collection::vec(0u8..4, 1..200)) {
        let mut reno = RenoController::new(1.0, 32.0, 64.0);
        for e in events {
            match e {
                0 => reno.on_new_ack(),
                1 => reno.on_extra_dupack(),
                2 => reno.on_fast_retransmit(reno.cwnd()),
                _ => reno.on_timeout(reno.cwnd()),
            }
            prop_assert!(reno.cwnd() >= 1.0, "cwnd fell below one segment");
            prop_assert!(reno.ssthresh() >= 2.0, "ssthresh fell below two segments");
            prop_assert!(reno.usable_window() >= 1);
        }
    }

    /// The RTO always stays within its configured bounds, whatever mix of
    /// samples and back-offs is applied.
    #[test]
    fn rto_respects_bounds(ops in proptest::collection::vec((0u8..2, 0.0f64..5.0), 1..100)) {
        let (min_rto, max_rto) = (0.5, 30.0);
        let mut est = RtoEstimator::new(min_rto, max_rto, 8);
        for (op, value) in ops {
            if op == 0 {
                est.sample(value);
            } else {
                est.back_off();
            }
            let rto = est.rto().as_secs();
            prop_assert!(rto >= min_rto - 1e-12 && rto <= max_rto + 1e-12, "rto {rto} out of bounds");
        }
    }

    /// A lossless sender/receiver pair makes monotone progress: bytes acked
    /// never decreases and never exceeds bytes the receiver delivered.
    #[test]
    fn lossless_transfer_is_consistent(rounds in 1usize..60) {
        let config = TcpConfig::default();
        let mut tx = TcpSender::new(CONN, config);
        let mut rx = TcpReceiver::new(CONN);
        let mut now = 0.0f64;
        let mut in_flight = tx.pump(SimTime::from_secs(now)).segments;
        for _ in 0..rounds {
            now += 0.1;
            let mut acks = Vec::new();
            for seg in in_flight.drain(..) {
                acks.push(rx.on_segment(&seg));
            }
            let mut next = Vec::new();
            for ack in acks {
                let out = tx.on_ack(&ack, SimTime::from_secs(now));
                next.extend(out.segments);
            }
            in_flight = next;
            prop_assert!(tx.bytes_acked() <= rx.stats().bytes_delivered);
            prop_assert_eq!(tx.retransmissions(), 0, "no loss means no retransmissions");
        }
    }
}
