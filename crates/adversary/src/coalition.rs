//! Colluding eavesdropper coalitions.
//!
//! The paper evaluates a *single* passive eavesdropper (Eq. 1).  A coalition
//! of `k` colluding nodes generalizes the interception ratio to the union of
//! what the members captured:
//!
//! ```text
//! R(coalition) = |  U_{i in coalition} captured_i  ∩  delivered  |  /  Pr
//! ```
//!
//! where `Pr` is the number of unique data packets delivered to the
//! destination.  Restricting the union to delivered packets keeps the ratio
//! a true coverage in `[0, 1]` and makes it comparable across protocols.
//!
//! Two placements are provided: **random** (nested draws, so the size-`k`
//! coalition is a prefix of the size-`k+1` one and coverage is monotone in
//! `k`) and **greedy** worst case (classical max-k-coverage greedy over the
//! finished run's trace — an upper bound no random placement can beat by more
//! than the usual `1 - 1/e` factor).

use crate::config::{CoalitionPlacement, CoverageBasis};
use manet_netsim::FxHashSet;
use manet_netsim::Recorder;
use manet_wire::{NodeId, PacketId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// What a specific coalition captured during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalitionReport {
    /// Colluding nodes, in placement order.
    pub members: Vec<NodeId>,
    /// Unique *delivered* data packets captured by at least one member.
    pub covered_packets: u64,
    /// Unique data packets delivered to the destination (`Pr`).
    pub packets_delivered: u64,
}

impl CoalitionReport {
    /// The coalition interception ratio `Pe(coalition) / Pr` (0 when nothing
    /// was delivered).  Always in `[0, 1]`.
    pub fn interception_ratio(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.covered_packets as f64 / self.packets_delivered as f64
        }
    }

    /// Coalition size.
    pub fn k(&self) -> usize {
        self.members.len()
    }
}

/// The packet set a node contributes under the chosen basis.
fn captured_set(
    recorder: &Recorder,
    node: NodeId,
    basis: CoverageBasis,
) -> Option<&FxHashSet<PacketId>> {
    match basis {
        CoverageBasis::Relayed => recorder.relayed_set(node),
        CoverageBasis::Heard => recorder.heard_set(node),
    }
}

/// Evaluate a given coalition against a finished run.
pub fn coalition_report(
    recorder: &Recorder,
    members: &[NodeId],
    basis: CoverageBasis,
) -> CoalitionReport {
    let mut covered: HashSet<PacketId> = HashSet::new();
    for &m in members {
        if let Some(set) = captured_set(recorder, m, basis) {
            covered.extend(set.iter().filter(|&&p| recorder.was_delivered(p)));
        }
    }
    CoalitionReport {
        members: members.to_vec(),
        covered_packets: covered.len() as u64,
        packets_delivered: recorder.delivered_data_packets(),
    }
}

/// Non-endpoint candidate nodes, in node-id order.
fn candidates(num_nodes: u16, endpoints: &[NodeId]) -> Vec<NodeId> {
    let mut is_endpoint = vec![false; num_nodes as usize];
    for e in endpoints {
        if let Some(slot) = is_endpoint.get_mut(e.index()) {
            *slot = true;
        }
    }
    (0..num_nodes)
        .map(NodeId)
        .filter(|n| !is_endpoint[n.index()])
        .collect()
}

/// Draw a random coalition of (up to) `k` distinct non-endpoint nodes.
///
/// The draw is *nested*: the first `j` members of a size-`k` draw equal the
/// size-`j` draw for the same RNG state, which makes coalition coverage
/// monotone in `k` by construction.
pub fn select_coalition_random(
    num_nodes: u16,
    endpoints: &[NodeId],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    let mut pool = candidates(num_nodes, endpoints);
    let take = k.min(pool.len());
    // Partial Fisher–Yates: position i receives a uniform choice from the
    // remaining pool, so prefixes are themselves uniform draws.
    for i in 0..take {
        let j = i + rng.gen_range(0..pool.len() - i);
        pool.swap(i, j);
    }
    pool.truncate(take);
    pool
}

/// Greedy worst-case coalition: repeatedly add the node with the largest
/// marginal coverage of delivered packets (ties broken towards the lowest
/// node id, so the result is deterministic).  Nodes adding no coverage are
/// appended in id order until `k` members are reached, keeping the size
/// comparable across protocols.
pub fn select_coalition_greedy(
    recorder: &Recorder,
    num_nodes: u16,
    endpoints: &[NodeId],
    k: usize,
    basis: CoverageBasis,
) -> Vec<NodeId> {
    let mut pool = candidates(num_nodes, endpoints);
    let take = k.min(pool.len());
    let mut chosen: Vec<NodeId> = Vec::with_capacity(take);
    let mut covered: HashSet<PacketId> = HashSet::new();
    while chosen.len() < take {
        let mut best: Option<(usize, usize)> = None; // (pool index, gain)
        for (i, &n) in pool.iter().enumerate() {
            let gain = captured_set(recorder, n, basis).map_or(0, |set| {
                set.iter()
                    .filter(|&&p| recorder.was_delivered(p) && !covered.contains(&p))
                    .count()
            });
            // Strictly-greater keeps the lowest node id on ties because the
            // pool is in id order.
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let (idx, gain) = best.expect("pool is non-empty while chosen < take");
        let n = pool.remove(idx); // preserves the id order the tie-break uses
        if gain > 0 {
            if let Some(set) = captured_set(recorder, n, basis) {
                covered.extend(set.iter().filter(|&&p| recorder.was_delivered(p)));
            }
        }
        chosen.push(n);
    }
    chosen
}

/// The coalition-coverage curve for `k = 1..=k_max` under one placement.
///
/// Random placements are seeded from `seed`, so the curve is reproducible;
/// both placements produce nested coalitions, so the returned ratios are
/// non-decreasing in `k`.
pub fn coalition_curve(
    recorder: &Recorder,
    num_nodes: u16,
    endpoints: &[NodeId],
    k_max: usize,
    placement: CoalitionPlacement,
    basis: CoverageBasis,
    seed: u64,
) -> Vec<CoalitionReport> {
    let members = match placement {
        CoalitionPlacement::Random => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0a1_1710);
            select_coalition_random(num_nodes, endpoints, k_max, &mut rng)
        }
        CoalitionPlacement::Greedy => {
            select_coalition_greedy(recorder, num_nodes, endpoints, k_max, basis)
        }
    };
    (1..=members.len())
        .map(|k| coalition_report(recorder, &members[..k], basis))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_netsim::SimTime;
    use manet_wire::ConnectionId;

    /// A recorder where packets 0..delivered reach node 9 and each
    /// `(node, ids)` pair relayed exactly those packet ids.
    fn recorder_with(delivered: u64, relays: &[(u16, &[u64])]) -> Recorder {
        let mut rec = Recorder::new();
        for id in 0..delivered {
            rec.record_originated(PacketId(id), ConnectionId(0), true, SimTime::ZERO);
            rec.record_delivered(
                NodeId(9),
                PacketId(id),
                ConnectionId(0),
                true,
                1000,
                SimTime::from_secs(1.0),
            );
        }
        for &(node, ids) in relays {
            for &id in ids {
                rec.record_relay(NodeId(node), PacketId(id), true, SimTime::ZERO);
            }
        }
        rec
    }

    #[test]
    fn union_coverage_counts_unique_delivered_packets() {
        // Nodes 2 and 3 overlap on packet 1; packet 77 was never delivered.
        let rec = recorder_with(4, &[(2, &[0, 1, 77]), (3, &[1, 2])]);
        let solo = coalition_report(&rec, &[NodeId(2)], CoverageBasis::Relayed);
        assert_eq!(solo.covered_packets, 2); // 0 and 1; 77 not delivered
        let pair = coalition_report(&rec, &[NodeId(2), NodeId(3)], CoverageBasis::Relayed);
        assert_eq!(pair.covered_packets, 3); // 0, 1, 2
        assert!((pair.interception_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(pair.k(), 2);
    }

    #[test]
    fn heard_basis_includes_overhearing() {
        let mut rec = recorder_with(2, &[(2, &[0])]);
        rec.record_overheard(NodeId(2), PacketId(1), true);
        let relayed = coalition_report(&rec, &[NodeId(2)], CoverageBasis::Relayed);
        let heard = coalition_report(&rec, &[NodeId(2)], CoverageBasis::Heard);
        assert_eq!(relayed.covered_packets, 1);
        assert_eq!(heard.covered_packets, 2);
    }

    #[test]
    fn greedy_picks_the_best_cover_first() {
        // Node 4 covers {0,1,2}, node 2 covers {0,1}, node 3 covers {3}.
        let rec = recorder_with(4, &[(2, &[0, 1]), (3, &[3]), (4, &[0, 1, 2])]);
        let picks =
            select_coalition_greedy(&rec, 10, &[NodeId(0), NodeId(9)], 2, CoverageBasis::Relayed);
        assert_eq!(picks[0], NodeId(4));
        // Second pick is node 3: marginal gain 1 beats node 2's 0.
        assert_eq!(picks[1], NodeId(3));
        let curve = coalition_curve(
            &rec,
            10,
            &[NodeId(0), NodeId(9)],
            3,
            CoalitionPlacement::Greedy,
            CoverageBasis::Relayed,
            1,
        );
        assert_eq!(curve.len(), 3);
        assert!((curve[1].interception_ratio() - 1.0).abs() < 1e-12);
        // Monotone and capped at 1.
        for w in curve.windows(2) {
            assert!(w[1].interception_ratio() >= w[0].interception_ratio());
        }
    }

    #[test]
    fn random_selection_is_nested_deterministic_and_avoids_endpoints() {
        let endpoints = [NodeId(0), NodeId(9)];
        let draw = |seed: u64, k: usize| {
            let mut rng = SmallRng::seed_from_u64(seed);
            select_coalition_random(20, &endpoints, k, &mut rng)
        };
        let five = draw(42, 5);
        let three = draw(42, 3);
        assert_eq!(&five[..3], &three[..], "draws must be nested");
        assert_eq!(five, draw(42, 5), "same seed, same coalition");
        assert!(five.iter().all(|n| !endpoints.contains(n)));
        let distinct: HashSet<NodeId> = five.iter().copied().collect();
        assert_eq!(distinct.len(), 5, "members must be distinct");
        // Degenerate: everyone is an endpoint.
        let none = select_coalition_random(
            2,
            &[NodeId(0), NodeId(1)],
            3,
            &mut SmallRng::seed_from_u64(1),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn empty_run_gives_zero_ratio() {
        let rec = Recorder::new();
        let r = coalition_report(&rec, &[NodeId(1), NodeId(2)], CoverageBasis::Heard);
        assert_eq!(r.interception_ratio(), 0.0);
        assert_eq!(r.covered_packets, 0);
    }
}
