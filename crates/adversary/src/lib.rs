//! # manet-adversary
//!
//! Active and colluding attacker models for the MANET simulator.  The paper's
//! evaluation stops at a single passive eavesdropper; this crate supplies the
//! hostile regimes its argument actually cares about:
//!
//! * [`config`] — [`AttackConfig`]: the attack axis carried by experiment
//!   scenarios (kind + intensity knobs + canonical matrix).
//! * [`coalition`] — colluding eavesdropper coalitions of size `k`: union
//!   coverage generalizing Eq. 1 to `Pe(coalition) / Pr`, with random
//!   (nested) and greedy worst-case placement.
//! * [`blackhole`] — black-hole / gray-hole relays implemented as
//!   [`manet_netsim::NodeStack`] wrappers: forged route replies attract
//!   traffic, attracted data is silently discarded.
//! * [`mobile`] — a mobile eavesdropper whose waypoints hunt the
//!   source–destination corridor instead of roaming uniformly.
//!
//! Selective jamming is configured through
//! [`manet_netsim::JamConfig`] (the corruption happens at reception time in
//! the engine); [`AttackConfig::jam_config`] builds it from the attack axis.
//!
//! Every model is deterministic per run seed: attacker placement comes from
//! salted scenario streams, drop decisions from per-attacker RNGs, and clean
//! runs consume no adversary randomness at all.

pub mod blackhole;
pub mod coalition;
pub mod config;
pub mod mobile;

pub use blackhole::{BlackholeStack, BlackholeStats, FORGED_SEQNO};
pub use coalition::{
    coalition_curve, coalition_report, select_coalition_greedy, select_coalition_random,
    CoalitionReport,
};
pub use config::{AttackConfig, AttackKind, CoalitionPlacement, CoverageBasis};
pub use mobile::CorridorMobility;
