//! # manet-adversary
//!
//! Active and colluding attacker models for the MANET simulator.  The paper's
//! evaluation stops at a single passive eavesdropper; this crate supplies the
//! hostile regimes its argument actually cares about:
//!
//! * [`config`] — [`AttackConfig`]: the attack axis carried by experiment
//!   scenarios (kind + intensity knobs + canonical matrix).
//! * [`coalition`] — colluding eavesdropper coalitions of size `k`: union
//!   coverage generalizing Eq. 1 to `Pe(coalition) / Pr`, with random
//!   (nested) and greedy worst-case placement.
//! * [`blackhole`] — black-hole / gray-hole relays implemented as
//!   [`manet_netsim::NodeStack`] wrappers: forged route replies attract
//!   traffic, attracted data is silently discarded.
//! * [`mobile`] — a mobile eavesdropper whose waypoints hunt the
//!   source–destination corridor instead of roaming uniformly.
//! * [`capture`] — the capture-ratio metric for route-attraction attacks
//!   (wormhole, rushing, black-hole attraction): the fraction of the
//!   session's delivered data that crossed a hostile node.
//!
//! Three attacks are engine-level hooks in `manet_netsim` built from the
//! attack axis: selective jamming ([`manet_netsim::JamConfig`], via
//! [`AttackConfig::jam_config`]), the wormhole pair's out-of-band tunnel
//! ([`manet_netsim::WormholeConfig`], via [`AttackConfig::wormhole_config`])
//! and rushing relays' zero-backoff MAC ([`manet_netsim::RushConfig`], via
//! [`AttackConfig::rush_config`]).  All three leave clean runs byte-identical
//! when disabled.
//!
//! Every model is deterministic per run seed: attacker placement comes from
//! salted scenario streams, drop decisions from per-attacker RNGs, and clean
//! runs consume no adversary randomness at all.

pub mod blackhole;
pub mod capture;
pub mod coalition;
pub mod config;
pub mod mobile;

pub use blackhole::{BlackholeStack, BlackholeStats, FORGED_SEQNO};
pub use capture::{capture_report, CaptureReport};
pub use coalition::{
    coalition_curve, coalition_report, select_coalition_greedy, select_coalition_random,
    CoalitionReport,
};
pub use config::{AttackConfig, AttackKind, CoalitionPlacement, CoverageBasis};
pub use mobile::CorridorMobility;
