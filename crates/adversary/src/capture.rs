//! Attacker capture metrics.
//!
//! Wormhole pairs and rushing relays do not (in this model) destroy traffic —
//! they *attract* it: routes collapse through the attacker, which then sees
//! the session's data.  The capture ratio quantifies that attraction the same
//! way the coalition metrics quantify eavesdropping:
//!
//! ```text
//! capture = | (U_i relayed_i  ∪  tunneled)  ∩  delivered |  /  Pr
//! ```
//!
//! where the union runs over the hostile nodes, `tunneled` is the set of data
//! packets that crossed a wormhole's out-of-band tunnel, and `Pr` is the
//! number of unique data packets delivered end-to-end.  Restricting to
//! delivered packets keeps the ratio a true coverage in `[0, 1]` and
//! comparable across protocols (a protocol that delivers nothing captures
//! nothing *of the session*).

use manet_netsim::Recorder;
use manet_wire::{NodeId, PacketId};
use std::collections::HashSet;

/// What the hostile nodes captured during one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureReport {
    /// The hostile nodes, in placement order.
    pub attackers: Vec<NodeId>,
    /// Unique *delivered* data packets that crossed an attacker (relayed by
    /// one, or tunneled through the wormhole).
    pub captured_packets: u64,
    /// Unique data packets delivered to the destination (`Pr`).
    pub packets_delivered: u64,
}

impl CaptureReport {
    /// The capture ratio (0 when nothing was delivered).  Always in `[0, 1]`.
    pub fn capture_ratio(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.captured_packets as f64 / self.packets_delivered as f64
        }
    }
}

/// Evaluate what `attackers` captured in a finished run.  The recorder's
/// wormhole tunnel set is always unioned in (it is empty unless the run had
/// a wormhole).
pub fn capture_report(recorder: &Recorder, attackers: &[NodeId]) -> CaptureReport {
    let mut captured: HashSet<PacketId> = HashSet::new();
    for &a in attackers {
        if let Some(set) = recorder.relayed_set(a) {
            captured.extend(set.iter().filter(|&&p| recorder.was_delivered(p)));
        }
    }
    captured.extend(
        recorder
            .tunneled_data_set()
            .iter()
            .filter(|&&p| recorder.was_delivered(p)),
    );
    CaptureReport {
        attackers: attackers.to_vec(),
        captured_packets: captured.len() as u64,
        packets_delivered: recorder.delivered_data_packets(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_netsim::SimTime;
    use manet_wire::{ConnectionId, DataPacket, NetPacket, TcpSegment};

    fn recorder() -> Recorder {
        let mut rec = Recorder::new();
        for id in 0..4u64 {
            rec.record_originated(PacketId(id), ConnectionId(0), true, SimTime::ZERO);
            rec.record_delivered(
                NodeId(9),
                PacketId(id),
                ConnectionId(0),
                true,
                1000,
                SimTime::from_secs(1.0),
            );
        }
        rec
    }

    #[test]
    fn capture_unions_relays_and_tunnel_over_delivered_packets() {
        let mut rec = recorder();
        // Attacker 3 relayed packets 0 and 1; packet 77 was never delivered.
        for id in [0u64, 1, 77] {
            rec.record_relay(NodeId(3), PacketId(id), true, SimTime::ZERO);
        }
        // Packet 2 crossed the wormhole tunnel.
        let dp = DataPacket::new(
            PacketId(2),
            NodeId(0),
            NodeId(9),
            TcpSegment::data(ConnectionId(0), 0, 0, 1000),
        );
        rec.record_tunneled(&NetPacket::Data(dp));
        let report = capture_report(&rec, &[NodeId(3), NodeId(4)]);
        assert_eq!(report.captured_packets, 3); // 0, 1 relayed + 2 tunneled
        assert_eq!(report.packets_delivered, 4);
        assert!((report.capture_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_runs_and_honest_nodes_capture_nothing() {
        let rec = Recorder::new();
        assert_eq!(capture_report(&rec, &[NodeId(1)]).capture_ratio(), 0.0);
        let rec = recorder();
        let report = capture_report(&rec, &[NodeId(5)]);
        assert_eq!(report.captured_packets, 0);
        assert_eq!(report.capture_ratio(), 0.0);
    }
}
