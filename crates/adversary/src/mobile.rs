//! A mobile eavesdropper that hunts the source–destination corridor.
//!
//! The paper's eavesdropper roams with the same random-waypoint process as
//! everyone else, so at any instant it is probably nowhere near the traffic.
//! A smarter passive attacker biases its movement toward the corridor
//! between the TCP endpoints, maximising the share of the session it can
//! overhear without ever transmitting a hostile byte.
//!
//! [`CorridorMobility`] wraps the ordinary [`RandomWaypoint`] model.  Because
//! a mobility model produces the legs of *every* node, it always knows the
//! most recent waypoint it handed the source and the destination; the
//! eavesdropper's next waypoint is sampled on the segment between those two
//! anchors plus a bounded perpendicular jitter, clamped to the field.
//!
//! The pursuit is deliberately aggressive: the eavesdropper moves at the
//! model's top speed and never commits to a leg longer than [`HOP_M`] metres,
//! so it re-plans every few seconds and keeps tracking the endpoints as they
//! move (an ordinary waypoint draw can pin a node to one slow straight line
//! for hundreds of seconds).  All other nodes behave exactly like the
//! wrapped model.

use manet_netsim::geometry::{Position, Vector2};
use manet_netsim::mobility::{MobilityModel, RandomWaypoint, Waypoint};
use manet_netsim::SimTime;
use manet_wire::NodeId;
use rand::{Rng, RngCore};

/// Maximum leg length of the hunting eavesdropper, metres.  Short hops make
/// the pursuit re-plan frequently enough to track moving endpoints.
pub const HOP_M: f64 = 150.0;

/// Random waypoint with one corridor-steered node.
#[derive(Debug, Clone)]
pub struct CorridorMobility {
    inner: RandomWaypoint,
    eavesdropper: usize,
    src: usize,
    dst: usize,
    jitter_m: f64,
    src_anchor: Option<Position>,
    dst_anchor: Option<Position>,
}

impl CorridorMobility {
    /// Steer `eavesdropper` toward the corridor between `src` and `dst`.
    ///
    /// `jitter_m` bounds how far from the corridor's centre line the
    /// eavesdropper's waypoints may land.
    pub fn new(
        inner: RandomWaypoint,
        eavesdropper: NodeId,
        src: NodeId,
        dst: NodeId,
        jitter_m: f64,
    ) -> Self {
        CorridorMobility {
            inner,
            eavesdropper: eavesdropper.index(),
            src: src.index(),
            dst: dst.index(),
            jitter_m: jitter_m.max(0.0),
            src_anchor: None,
            dst_anchor: None,
        }
    }

    /// Remember the freshest known anchor of an endpoint.
    fn observe(&mut self, idx: usize, pos: Position) {
        if idx == self.src {
            self.src_anchor = Some(pos);
        } else if idx == self.dst {
            self.dst_anchor = Some(pos);
        }
    }

    /// A waypoint on the corridor between the two anchors, jittered and
    /// clamped to the field.
    fn corridor_point(&self, a: Position, b: Position, rng: &mut dyn RngCore) -> Position {
        let t: f64 = rng.gen_range(0.0..1.0);
        let along = a + (b - a) * t;
        let dir = (b - a).normalized();
        // Perpendicular of the corridor direction; for a degenerate corridor
        // (the endpoints share an anchor) jitter on a fixed axis instead.
        let perp = if dir == Vector2::default() {
            Vector2::new(0.0, 1.0)
        } else {
            Vector2::new(-dir.y, dir.x)
        };
        let offset = if self.jitter_m > 0.0 {
            rng.gen_range(-self.jitter_m..self.jitter_m)
        } else {
            0.0
        };
        let p = along + perp * offset;
        Position::new(
            p.x.clamp(0.0, self.inner.width),
            p.y.clamp(0.0, self.inner.height),
        )
    }
}

impl MobilityModel for CorridorMobility {
    fn initial_position(&mut self, idx: usize, rng: &mut dyn RngCore) -> Position {
        let p = self.inner.initial_position(idx, rng);
        self.observe(idx, p);
        p
    }

    fn next_leg(
        &mut self,
        idx: usize,
        current: Position,
        now: SimTime,
        epoch: u64,
        rng: &mut dyn RngCore,
    ) -> Waypoint {
        let mut leg = self.inner.next_leg(idx, current, now, epoch, rng);
        self.observe(idx, leg.to);
        if idx == self.eavesdropper {
            // Steer toward the corridor; with only one endpoint anchor known
            // (the other endpoint has a higher node id and no leg yet) hunt
            // that anchor, and with none keep the random target.
            match (self.src_anchor, self.dst_anchor) {
                (Some(a), Some(b)) => leg.to = self.corridor_point(a, b, rng),
                (Some(a), None) | (None, Some(a)) => leg.to = self.corridor_point(a, a, rng),
                (None, None) => {}
            }
            // Hunt dynamics: full speed, bounded hops, so the pursuit
            // re-plans every few seconds instead of committing to one long
            // slow line (zero-max-speed models stay pinned like everyone
            // else).
            if self.inner.config.max_speed > 0.0 {
                leg.speed = self.inner.config.max_speed;
            }
            let dist = leg.from.distance_to(leg.to);
            if dist > HOP_M {
                leg.to = leg.from + (leg.to - leg.from).normalized() * HOP_M;
            }
        }
        leg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_netsim::config::MobilityConfig;
    use manet_netsim::Duration;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model(jitter: f64) -> CorridorMobility {
        let cfg = MobilityConfig {
            min_speed: 1.0,
            max_speed: 10.0,
            pause: Duration::from_secs(1.0),
        };
        CorridorMobility::new(
            RandomWaypoint::new(1000.0, 1000.0, cfg),
            NodeId(2),
            NodeId(0),
            NodeId(1),
            jitter,
        )
    }

    /// Distance from `p` to the segment `a`–`b`.
    fn dist_to_segment(p: Position, a: Position, b: Position) -> f64 {
        let ab = b - a;
        let len_sq = ab.x * ab.x + ab.y * ab.y;
        if len_sq == 0.0 {
            return p.distance_to(a);
        }
        let ap = p - a;
        let t = ((ap.x * ab.x + ap.y * ab.y) / len_sq).clamp(0.0, 1.0);
        p.distance_to(a + ab * t)
    }

    #[test]
    fn eavesdropper_pursuit_converges_onto_the_corridor() {
        let mut m = model(50.0);
        let mut rng = SmallRng::seed_from_u64(3);
        // Seed the endpoint anchors via their initial placements.
        let a = m.initial_position(0, &mut rng);
        let b = m.initial_position(1, &mut rng);
        let mut pos = m.initial_position(2, &mut rng);
        let mut converged = false;
        for epoch in 0..50 {
            let leg = m.next_leg(2, pos, SimTime::ZERO, epoch, &mut rng);
            // Hunt dynamics: top speed, bounded hops, inside the field.
            assert_eq!(leg.speed, 10.0, "the hunter moves at the model's top speed");
            assert!(leg.from.distance_to(leg.to) <= HOP_M + 1e-9);
            assert!((0.0..=1000.0).contains(&leg.to.x) && (0.0..=1000.0).contains(&leg.to.y));
            let before = dist_to_segment(pos, a, b);
            let after = dist_to_segment(leg.to, a, b);
            if after <= 50.0 + 1e-9 {
                converged = true;
            } else {
                // Still far away: every hop closes in on the corridor.
                assert!(
                    after < before,
                    "hop {:?} -> {:?} moved away from corridor {:?}-{:?}",
                    pos,
                    leg.to,
                    a,
                    b
                );
            }
            pos = leg.to;
        }
        assert!(converged, "50 hops must reach the corridor band");
    }

    #[test]
    fn corridor_follows_endpoint_legs() {
        let mut m = model(10.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = m.initial_position(0, &mut rng);
        let _ = m.initial_position(1, &mut rng);
        let _ = m.initial_position(2, &mut rng);
        // Move the source: its new leg target becomes the corridor anchor.
        let src_leg = m.next_leg(0, Position::new(0.0, 0.0), SimTime::ZERO, 1, &mut rng);
        assert_eq!(m.src_anchor, Some(src_leg.to));
        let dst_leg = m.next_leg(1, Position::new(0.0, 0.0), SimTime::ZERO, 1, &mut rng);
        assert_eq!(m.dst_anchor, Some(dst_leg.to));
    }

    #[test]
    fn other_nodes_are_untouched_by_the_wrapper() {
        // Same seed: a non-special node's first leg must match the plain model.
        let cfg = MobilityConfig {
            min_speed: 1.0,
            max_speed: 10.0,
            pause: Duration::from_secs(1.0),
        };
        let mut plain = RandomWaypoint::new(1000.0, 1000.0, cfg);
        let mut wrapped = model(100.0);
        let mut rng_a = SmallRng::seed_from_u64(11);
        let mut rng_b = SmallRng::seed_from_u64(11);
        let pa = plain.initial_position(5, &mut rng_a);
        let pb = wrapped.initial_position(5, &mut rng_b);
        assert_eq!(pa, pb);
        let la = plain.next_leg(5, pa, SimTime::ZERO, 0, &mut rng_a);
        let lb = wrapped.next_leg(5, pb, SimTime::ZERO, 0, &mut rng_b);
        assert_eq!(la.to, lb.to);
        assert_eq!(la.speed, lb.speed);
    }

    #[test]
    fn degenerate_corridor_still_produces_valid_waypoints() {
        let mut m = model(0.0);
        m.src_anchor = Some(Position::new(500.0, 500.0));
        m.dst_anchor = Some(Position::new(500.0, 500.0));
        let mut rng = SmallRng::seed_from_u64(1);
        // One hop from the origin toward the collapsed corridor point.
        let leg = m.next_leg(2, Position::new(0.0, 0.0), SimTime::ZERO, 0, &mut rng);
        let dir = (Position::new(500.0, 500.0) - Position::new(0.0, 0.0)).normalized();
        let expected = Position::new(0.0, 0.0) + dir * HOP_M;
        assert!(leg.to.distance_to(expected) < 1e-9);
        // A second hop from within reach lands exactly on it.
        let leg = m.next_leg(2, Position::new(450.0, 450.0), SimTime::ZERO, 1, &mut rng);
        assert_eq!(leg.to, Position::new(500.0, 500.0));
    }

    #[test]
    fn single_known_anchor_is_hunted_before_the_corridor_forms() {
        let mut m = model(0.0);
        m.src_anchor = Some(Position::new(800.0, 200.0));
        m.dst_anchor = None;
        let mut rng = SmallRng::seed_from_u64(4);
        let leg = m.next_leg(2, Position::new(800.0, 100.0), SimTime::ZERO, 0, &mut rng);
        assert_eq!(leg.to, Position::new(800.0, 200.0));
    }
}
