//! Black-hole / gray-hole relays.
//!
//! A hostile relay wraps a node's ordinary protocol stack and mounts the
//! classical AODV/DSR insider attack in two steps:
//!
//! 1. **Route attraction** — whenever it hears a route request for a session
//!    it does not terminate, it forges an immediate route reply claiming a
//!    zero-hop route to the destination with a very fresh sequence number.
//!    AODV and MTS sources install the route because the forged sequence
//!    number wins the freshness comparison; DSR sources install it because
//!    the forged reply carries a plausible source route ending at the
//!    attacker.  The genuine request is still processed and re-broadcast by
//!    the wrapped stack, so the attacker stays indistinguishable from a
//!    well-behaved relay at the MAC level.
//! 2. **Data discarding** — data packets it is asked to forward are silently
//!    dropped with probability `drop_fraction` (1.0 = black hole, smaller
//!    fractions = gray hole).  Because the MAC-level unicast to the attacker
//!    still succeeds, the upstream node sees no link failure: the loss is
//!    only visible end-to-end, which is what makes the attack nasty.
//!
//! Drop decisions come from a private RNG seeded from `(run seed, node id)`,
//! so attack runs are exactly reproducible and do not perturb the protocol
//! random stream shared with honest nodes.

use manet_netsim::telemetry::TelemetryEvent;
use manet_netsim::{Ctx, DropReason, NodeStack, TimerToken};
use manet_wire::{Frame, NetPacket, NodeId, RouteReply, SeqNo, SharedPacket};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Forged destination sequence number: large enough to beat any genuine
/// sequence number a 200 s run can reach, small enough to stay on the
/// "fresher" side of AODV's wrapping comparison.
pub const FORGED_SEQNO: SeqNo = SeqNo(0x00FF_FFFF);

/// Counters a hostile relay keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlackholeStats {
    /// Forged route replies emitted.
    pub forged_rreps: u64,
    /// Data packets received for forwarding (attracted traffic).
    pub attracted_data: u64,
    /// Data packets deliberately discarded.
    pub dropped_data: u64,
}

/// A [`NodeStack`] wrapper turning one node into a black/gray-hole relay.
pub struct BlackholeStack {
    me: NodeId,
    inner: Box<dyn NodeStack + Send>,
    drop_fraction: f64,
    rng: SmallRng,
    stats: BlackholeStats,
}

impl BlackholeStack {
    /// Wrap `inner` (node `me`'s honest stack) into a hostile relay.
    ///
    /// `run_seed` is the scenario seed; the drop RNG is derived from it and
    /// the node id so coalitions of gray holes stay mutually independent.
    pub fn new(
        me: NodeId,
        inner: Box<dyn NodeStack + Send>,
        drop_fraction: f64,
        run_seed: u64,
    ) -> Self {
        let salt = 0xb1ac_4041u64.wrapping_mul(u64::from(me.0) + 1);
        BlackholeStack {
            me,
            inner,
            drop_fraction,
            rng: SmallRng::seed_from_u64(run_seed ^ salt),
            stats: BlackholeStats::default(),
        }
    }

    /// The attacker's private counters.
    pub fn stats(&self) -> BlackholeStats {
        self.stats
    }

    fn should_drop(&mut self) -> bool {
        self.drop_fraction >= 1.0
            || (self.drop_fraction > 0.0 && self.rng.gen::<f64>() < self.drop_fraction)
    }
}

impl NodeStack for BlackholeStack {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        self.inner.on_timer(ctx, token);
    }

    fn on_receive(&mut self, ctx: &mut Ctx<'_>, from: NodeId, packet: SharedPacket) {
        // Inspect through the shared reference; the packet is only ever
        // passed through to the wrapped stack (or swallowed), never copied.
        match &*packet {
            NetPacket::Rreq(rreq) if rreq.source != self.me && rreq.destination != self.me => {
                // Forge the attracting reply: claim the destination is our
                // direct neighbour.  The source route ends at us so DSR
                // sources install it too.
                let mut route = rreq.route.clone();
                route.push(self.me);
                let rrep = RouteReply {
                    source: rreq.source,
                    destination: rreq.destination,
                    reply_id: rreq.broadcast_id,
                    hop_count: 0,
                    route,
                    dest_seqno: FORGED_SEQNO,
                };
                self.stats.forged_rreps += 1;
                ctx.send_unicast(from, NetPacket::Rrep(rrep));
                // Keep relaying the flood like an honest node.
                self.inner.on_receive(ctx, from, packet);
            }
            NetPacket::Data(d) if d.dst != self.me && d.src != self.me => {
                self.stats.attracted_data += 1;
                if self.should_drop() {
                    self.stats.dropped_data += 1;
                    let node = self.me;
                    let carries = d.carries_data();
                    let t = ctx.now().as_secs();
                    let rec = ctx.recorder();
                    rec.record_adversary_drop(node, carries);
                    if rec.telemetry.enabled() {
                        let conn = d.segment.conn.0;
                        let seq = d.segment.seq;
                        let shard = rec.telemetry.shard();
                        rec.telemetry.emit(TelemetryEvent::Drop {
                            t,
                            shard,
                            node: node.0,
                            reason: DropReason::AdversaryDiscard,
                            kind: "DATA",
                            conn: carries.then_some(conn),
                        });
                        if rec.telemetry.traced(conn, seq, carries) {
                            rec.telemetry.emit(TelemetryEvent::Provenance {
                                t,
                                shard,
                                stage: "drop",
                                node: node.0,
                                conn,
                                seq,
                                kind: "DATA",
                            });
                        }
                    }
                    // Swallowed: the upstream MAC saw a successful delivery,
                    // so no link failure or route error is triggered.
                } else {
                    self.inner.on_receive(ctx, from, packet);
                }
            }
            _ => self.inner.on_receive(ctx, from, packet),
        }
    }

    fn on_promiscuous(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        self.inner.on_promiscuous(ctx, frame);
    }

    fn on_link_failure(&mut self, ctx: &mut Ctx<'_>, next_hop: NodeId, packet: NetPacket) {
        self.inner.on_link_failure(ctx, next_hop, packet);
    }

    fn on_run_end(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.on_run_end(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forged_seqno_wins_the_freshness_comparison() {
        for genuine in [0u32, 1, 5, 1000, 100_000] {
            assert!(
                FORGED_SEQNO.fresher_than(SeqNo(genuine)),
                "forged seqno must beat genuine seqno {genuine}"
            );
        }
    }

    #[test]
    fn drop_decisions_are_deterministic_per_seed_and_node() {
        struct Sink;
        impl NodeStack for Sink {
            fn start(&mut self, _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: TimerToken) {}
            fn on_receive(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _packet: SharedPacket) {}
            fn on_link_failure(&mut self, _c: &mut Ctx<'_>, _n: NodeId, _p: NetPacket) {}
        }
        let draws = |seed: u64, node: u16| {
            let mut s = BlackholeStack::new(NodeId(node), Box::new(Sink), 0.5, seed);
            (0..64).map(|_| s.should_drop()).collect::<Vec<bool>>()
        };
        assert_eq!(draws(7, 3), draws(7, 3));
        assert_ne!(draws(7, 3), draws(8, 3), "seed must matter");
        assert_ne!(draws(7, 3), draws(7, 4), "node id must matter");
        // Degenerate fractions never consult the RNG.
        let mut black = BlackholeStack::new(NodeId(1), Box::new(Sink), 1.0, 1);
        assert!((0..32).all(|_| black.should_drop()));
        let mut honest = BlackholeStack::new(NodeId(1), Box::new(Sink), 0.0, 1);
        assert!((0..32).all(|_| !honest.should_drop()));
    }
}
