//! Attack configuration: which adversary runs inside a scenario and how hard.
//!
//! An [`AttackConfig`] is carried by an experiment scenario the same way the
//! protocol choice is, so sweeps can form the full protocol × attack ×
//! intensity matrix.  Runs with [`AttackKind::None`] are byte-identical to
//! pre-adversary runs (no extra randomness is consumed anywhere).

use manet_netsim::{Duration, JamConfig, JamTarget, RushConfig, WormholeConfig};
use manet_wire::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How colluding eavesdroppers are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoalitionPlacement {
    /// `k` distinct non-endpoint nodes drawn uniformly from the scenario seed
    /// (nested: the size-`k` coalition is a prefix of the size-`k+1` one, so
    /// coverage is monotone in `k`).
    Random,
    /// Greedy worst case: after the run, repeatedly add the node with the
    /// largest marginal union coverage (the classical max-k-coverage greedy).
    Greedy,
}

impl CoalitionPlacement {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CoalitionPlacement::Random => "rand",
            CoalitionPlacement::Greedy => "greedy",
        }
    }
}

/// Which per-node packet set the coalition unions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoverageBasis {
    /// Packets *received to relay* (the paper's β, Fig. 7 worst-case basis).
    Relayed,
    /// Everything heard, including promiscuous overhearing (the paper's
    /// designated-eavesdropper basis, Eq. 1).
    Heard,
}

/// The adversary model of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// No adversary: the clean baseline every attack is compared against.
    None,
    /// A coalition of `k` colluding eavesdroppers; purely passive, evaluated
    /// from the finished run's trace (union coverage, generalizing Eq. 1 to
    /// `Pe(coalition) / Pr`).
    Coalition {
        /// Coalition size (the paper's single eavesdropper is `k = 1`).
        k: u8,
        /// Placement strategy.
        placement: CoalitionPlacement,
        /// Which per-node packet sets are unioned.
        basis: CoverageBasis,
    },
    /// Black-hole / gray-hole relays: the attackers answer route discoveries
    /// with forged replies (claiming a fresh zero-hop route) to attract
    /// traffic, then drop forwarded data packets with probability
    /// `drop_fraction` (1.0 = black hole, fractions = gray hole).
    Blackhole {
        /// Number of hostile relays.
        attackers: u16,
        /// Fraction of attracted data packets that are discarded.
        drop_fraction: f64,
    },
    /// The designated eavesdropper steers its random-waypoint destinations
    /// toward the source–destination corridor instead of roaming uniformly.
    MobileEavesdropper {
        /// Maximum perpendicular offset from the corridor, metres.
        corridor_jitter_m: f64,
    },
    /// Selective jamming: hostile nodes statistically destroy receptions of
    /// the targeted frame class in their radio vicinity.
    Jamming {
        /// Number of jamming nodes.
        jammers: u16,
        /// Frame class the jammers key on.
        target: JamTarget,
        /// Probability a targeted reception near a jammer is corrupted.
        loss_prob: f64,
    },
    /// A wormhole pair: two colluders joined by an out-of-band tunnel
    /// (engine-level link hook, see [`manet_netsim::WormholeConfig`]).
    /// Discovery floods cross the tunnel, so routes collapse through the
    /// pair, which then sees — *captures* — the attracted traffic.
    Wormhole {
        /// One-way tunnel latency, seconds.
        tunnel_delay: f64,
    },
    /// Rushing attackers: relays that forward with zero processing delay
    /// (no DIFS, no backoff — see [`manet_netsim::RushConfig`]), so their
    /// RREQ copies win the duplicate-suppression race and discovered routes
    /// run through them.
    Rushing {
        /// Number of rushing relays.
        attackers: u16,
    },
}

/// Attack configuration carried by a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// The adversary model (and its intensity knobs).
    pub kind: AttackKind,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            kind: AttackKind::None,
        }
    }
}

impl AttackConfig {
    /// The clean baseline (no adversary).
    pub fn none() -> Self {
        Self::default()
    }

    /// A colluding eavesdropper coalition of size `k`.
    pub fn coalition(k: u8, placement: CoalitionPlacement) -> Self {
        AttackConfig {
            kind: AttackKind::Coalition {
                k,
                placement,
                basis: CoverageBasis::Relayed,
            },
        }
    }

    /// `attackers` black holes dropping every attracted data packet.
    pub fn blackhole(attackers: u16) -> Self {
        AttackConfig {
            kind: AttackKind::Blackhole {
                attackers,
                drop_fraction: 1.0,
            },
        }
    }

    /// `attackers` gray holes dropping `drop_fraction` of attracted data.
    pub fn grayhole(attackers: u16, drop_fraction: f64) -> Self {
        AttackConfig {
            kind: AttackKind::Blackhole {
                attackers,
                drop_fraction,
            },
        }
    }

    /// A corridor-steering mobile eavesdropper.
    pub fn mobile_eavesdropper() -> Self {
        AttackConfig {
            kind: AttackKind::MobileEavesdropper {
                corridor_jitter_m: 100.0,
            },
        }
    }

    /// `jammers` selective jammers destroying `loss_prob` of the targeted
    /// class.
    pub fn jamming(jammers: u16, target: JamTarget, loss_prob: f64) -> Self {
        AttackConfig {
            kind: AttackKind::Jamming {
                jammers,
                target,
                loss_prob,
            },
        }
    }

    /// A wormhole pair with a 1 µs out-of-band tunnel.
    pub fn wormhole() -> Self {
        AttackConfig {
            kind: AttackKind::Wormhole { tunnel_delay: 1e-6 },
        }
    }

    /// `attackers` rushing relays.
    pub fn rushing(attackers: u16) -> Self {
        AttackConfig {
            kind: AttackKind::Rushing { attackers },
        }
    }

    /// True for the clean baseline.
    pub fn is_none(&self) -> bool {
        matches!(self.kind, AttackKind::None)
    }

    /// Number of hostile nodes this attack needs placed inside the network
    /// (0 for passive/analysis-only attacks and the mobile eavesdropper,
    /// which reuses the designated eavesdropper).
    pub fn attackers_needed(&self) -> u16 {
        match self.kind {
            AttackKind::Blackhole { attackers, .. } => attackers,
            AttackKind::Jamming { jammers, .. } => jammers,
            AttackKind::Wormhole { .. } => 2,
            AttackKind::Rushing { attackers } => attackers,
            _ => 0,
        }
    }

    /// True when the attack's hostile nodes *capture* traffic by attracting
    /// routes through themselves (the capture-ratio metric applies).
    pub fn captures_traffic(&self) -> bool {
        matches!(
            self.kind,
            AttackKind::Wormhole { .. } | AttackKind::Rushing { .. } | AttackKind::Blackhole { .. }
        )
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), String> {
        match self.kind {
            AttackKind::None => Ok(()),
            AttackKind::Coalition { k, .. } => {
                if k == 0 {
                    Err("coalition size k must be at least 1".into())
                } else {
                    Ok(())
                }
            }
            AttackKind::Blackhole {
                attackers,
                drop_fraction,
            } => {
                if attackers == 0 {
                    return Err("black hole needs at least one attacker".into());
                }
                if !(0.0..=1.0).contains(&drop_fraction) {
                    return Err("drop_fraction must be in [0, 1]".into());
                }
                Ok(())
            }
            AttackKind::MobileEavesdropper { corridor_jitter_m } => {
                if corridor_jitter_m < 0.0 || !corridor_jitter_m.is_finite() {
                    Err("corridor_jitter_m must be non-negative and finite".into())
                } else {
                    Ok(())
                }
            }
            AttackKind::Jamming {
                jammers, loss_prob, ..
            } => {
                if jammers == 0 {
                    return Err("jamming needs at least one jammer".into());
                }
                if !(0.0..=1.0).contains(&loss_prob) {
                    return Err("jamming loss_prob must be in [0, 1]".into());
                }
                Ok(())
            }
            AttackKind::Wormhole { tunnel_delay } => {
                if tunnel_delay < 0.0 || !tunnel_delay.is_finite() {
                    Err("wormhole tunnel_delay must be non-negative and finite".into())
                } else {
                    Ok(())
                }
            }
            AttackKind::Rushing { attackers } => {
                if attackers == 0 {
                    Err("rushing needs at least one attacker".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Build the netsim-level jamming configuration for the given hostile
    /// nodes, if this attack jams.
    pub fn jam_config(&self, attackers: &[NodeId]) -> Option<JamConfig> {
        match self.kind {
            AttackKind::Jamming {
                target, loss_prob, ..
            } => Some(JamConfig {
                jammers: attackers.to_vec(),
                target,
                loss_prob,
                range_m: 0.0,
            }),
            _ => None,
        }
    }

    /// Build the netsim-level wormhole configuration for the given hostile
    /// nodes, if this attack is a wormhole (the first two placed attackers
    /// become the tunnel endpoints).
    pub fn wormhole_config(&self, attackers: &[NodeId]) -> Option<WormholeConfig> {
        match self.kind {
            AttackKind::Wormhole { tunnel_delay } if attackers.len() >= 2 => Some(WormholeConfig {
                a: attackers[0],
                b: attackers[1],
                delay: Duration::from_secs(tunnel_delay),
            }),
            _ => None,
        }
    }

    /// Build the netsim-level rushing configuration for the given hostile
    /// nodes, if this attack rushes.
    pub fn rush_config(&self, attackers: &[NodeId]) -> Option<RushConfig> {
        match self.kind {
            AttackKind::Rushing { .. } if !attackers.is_empty() => Some(RushConfig {
                rushers: attackers.to_vec(),
            }),
            _ => None,
        }
    }

    /// The canonical attack matrix axis used by the experiment sweeps, the
    /// `attack_matrix` bench and `reproduce --attacks`.
    ///
    /// # Examples
    ///
    /// ```
    /// use manet_adversary::AttackConfig;
    ///
    /// let matrix = AttackConfig::canonical_matrix();
    /// assert!(matrix[0].is_none(), "the clean baseline comes first");
    /// assert!(matrix.iter().all(|a| a.validate().is_ok()));
    /// let labels: Vec<String> = matrix.iter().map(|a| a.to_string()).collect();
    /// assert!(labels.contains(&"blackhole(x2)".to_string()));
    /// assert!(labels.contains(&"wormhole".to_string()));
    /// assert!(labels.contains(&"rushing(x2)".to_string()));
    /// ```
    pub fn canonical_matrix() -> Vec<AttackConfig> {
        vec![
            AttackConfig::none(),
            AttackConfig::coalition(3, CoalitionPlacement::Greedy),
            AttackConfig::grayhole(2, 0.5),
            AttackConfig::blackhole(2),
            AttackConfig::mobile_eavesdropper(),
            AttackConfig::jamming(2, JamTarget::Control, 0.8),
            AttackConfig::jamming(2, JamTarget::Data, 0.8),
            AttackConfig::wormhole(),
            AttackConfig::rushing(2),
        ]
    }
}

impl fmt::Display for AttackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AttackKind::None => write!(f, "clean"),
            AttackKind::Coalition {
                k,
                placement,
                basis,
            } => {
                let b = match basis {
                    CoverageBasis::Relayed => "",
                    CoverageBasis::Heard => ",heard",
                };
                write!(f, "coalition(k={k},{}{b})", placement.label())
            }
            AttackKind::Blackhole {
                attackers,
                drop_fraction,
            } => {
                if (drop_fraction - 1.0).abs() < 1e-12 {
                    write!(f, "blackhole(x{attackers})")
                } else {
                    write!(f, "grayhole(x{attackers},p={drop_fraction})")
                }
            }
            AttackKind::MobileEavesdropper { .. } => write!(f, "mobile-eve"),
            AttackKind::Jamming {
                jammers,
                target,
                loss_prob,
            } => {
                let t = match target {
                    JamTarget::Control => "ctrl",
                    JamTarget::Data => "data",
                    JamTarget::All => "all",
                };
                write!(f, "jam-{t}(x{jammers},p={loss_prob})")
            }
            AttackKind::Wormhole { .. } => write!(f, "wormhole"),
            AttackKind::Rushing { attackers } => write!(f, "rushing(x{attackers})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_matrix_is_valid_and_starts_clean() {
        let matrix = AttackConfig::canonical_matrix();
        assert!(matrix[0].is_none());
        assert!(matrix.len() >= 6);
        for a in &matrix {
            a.validate().unwrap();
        }
        // Labels are unique (they key the report rows).
        let labels: std::collections::HashSet<String> =
            matrix.iter().map(|a| a.to_string()).collect();
        assert_eq!(labels.len(), matrix.len());
    }

    #[test]
    fn coalition_labels_distinguish_the_basis() {
        let relayed = AttackConfig::coalition(3, CoalitionPlacement::Greedy);
        let heard = AttackConfig {
            kind: AttackKind::Coalition {
                k: 3,
                placement: CoalitionPlacement::Greedy,
                basis: CoverageBasis::Heard,
            },
        };
        assert_ne!(relayed.to_string(), heard.to_string());
        assert_eq!(relayed.to_string(), "coalition(k=3,greedy)");
        assert_eq!(heard.to_string(), "coalition(k=3,greedy,heard)");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(AttackConfig::coalition(0, CoalitionPlacement::Random)
            .validate()
            .is_err());
        assert!(AttackConfig::blackhole(0).validate().is_err());
        assert!(AttackConfig::grayhole(1, 1.5).validate().is_err());
        assert!(AttackConfig::jamming(0, JamTarget::Data, 0.5)
            .validate()
            .is_err());
        assert!(AttackConfig::jamming(1, JamTarget::Data, -0.1)
            .validate()
            .is_err());
        let mut bad = AttackConfig::mobile_eavesdropper();
        bad.kind = AttackKind::MobileEavesdropper {
            corridor_jitter_m: f64::NAN,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn attackers_needed_matches_kind() {
        assert_eq!(AttackConfig::none().attackers_needed(), 0);
        assert_eq!(AttackConfig::blackhole(3).attackers_needed(), 3);
        assert_eq!(
            AttackConfig::jamming(2, JamTarget::All, 0.5).attackers_needed(),
            2
        );
        assert_eq!(AttackConfig::mobile_eavesdropper().attackers_needed(), 0);
        assert_eq!(
            AttackConfig::coalition(4, CoalitionPlacement::Greedy).attackers_needed(),
            0
        );
    }

    #[test]
    fn wormhole_and_rushing_knobs() {
        let worm = AttackConfig::wormhole();
        worm.validate().unwrap();
        assert_eq!(worm.attackers_needed(), 2);
        assert_eq!(worm.to_string(), "wormhole");
        assert!(worm.captures_traffic());
        let endpoints = [NodeId(4), NodeId(11)];
        let cfg = worm.wormhole_config(&endpoints).unwrap();
        assert_eq!((cfg.a, cfg.b), (NodeId(4), NodeId(11)));
        assert!(worm.wormhole_config(&[NodeId(4)]).is_none(), "needs 2");
        assert!(worm.rush_config(&endpoints).is_none());

        let rush = AttackConfig::rushing(3);
        rush.validate().unwrap();
        assert_eq!(rush.attackers_needed(), 3);
        assert_eq!(rush.to_string(), "rushing(x3)");
        assert!(rush.captures_traffic());
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(rush.rush_config(&nodes).unwrap().rushers, nodes.to_vec());
        assert!(rush.wormhole_config(&nodes).is_none());
        assert!(AttackConfig::rushing(0).validate().is_err());
        let mut bad = AttackConfig::wormhole();
        bad.kind = AttackKind::Wormhole {
            tunnel_delay: f64::NAN,
        };
        assert!(bad.validate().is_err());
        // Passive attacks do not capture.
        assert!(!AttackConfig::none().captures_traffic());
        assert!(!AttackConfig::coalition(2, CoalitionPlacement::Random).captures_traffic());
        assert!(AttackConfig::blackhole(1).captures_traffic());
    }

    #[test]
    fn jam_config_only_for_jamming() {
        let nodes = [NodeId(1), NodeId(2)];
        let jam = AttackConfig::jamming(2, JamTarget::Control, 0.7);
        let cfg = jam.jam_config(&nodes).unwrap();
        assert_eq!(cfg.jammers, nodes.to_vec());
        assert_eq!(cfg.loss_prob, 0.7);
        assert!(AttackConfig::blackhole(2).jam_config(&nodes).is_none());
        assert!(AttackConfig::none().jam_config(&nodes).is_none());
    }
}
