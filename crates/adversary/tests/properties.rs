//! Property-based tests for the coalition / interception metrics.

use manet_adversary::{
    coalition_curve, coalition_report, select_coalition_greedy, CoalitionPlacement, CoverageBasis,
};
use manet_netsim::{Recorder, SimTime};
use manet_security::interception::highest_interception_ratio;
use manet_wire::{ConnectionId, NodeId, PacketId};
use proptest::prelude::*;

const NUM_NODES: u16 = 20;
const DST: u16 = 19;

/// Build a recorder from arbitrary relay assignments: `delivered` packets
/// 0..delivered reach node `DST`, and each `(node, packet)` pair records one
/// relay (packet ids are folded into the delivered range plus some undelivered
/// ids to exercise the delivered-only coverage filter).
fn build_recorder(delivered: u64, relays: &[(u16, u64)]) -> Recorder {
    let mut rec = Recorder::new();
    for id in 0..delivered {
        rec.record_originated(PacketId(id), ConnectionId(0), true, SimTime::ZERO);
        rec.record_delivered(
            NodeId(DST),
            PacketId(id),
            ConnectionId(0),
            true,
            1000,
            SimTime::from_secs(1.0),
        );
    }
    for &(node, packet) in relays {
        // Half the id space points at never-delivered packets.
        rec.record_relay(
            NodeId(node % NUM_NODES),
            PacketId(packet),
            true,
            SimTime::ZERO,
        );
    }
    rec
}

fn endpoints() -> [NodeId; 2] {
    [NodeId(0), NodeId(DST)]
}

proptest! {
    /// Coalition interception ratios are always in [0, 1], for both bases and
    /// any member set — including members that heard nothing and ids that
    /// were never delivered.
    #[test]
    fn coalition_ratios_stay_in_unit_interval(
        delivered in 0u64..30,
        relays in proptest::collection::vec((0u16..NUM_NODES, 0u64..60), 0..80),
        members in proptest::collection::vec(0u16..NUM_NODES, 0..8),
    ) {
        let rec = build_recorder(delivered, &relays);
        let members: Vec<NodeId> = members.into_iter().map(NodeId).collect();
        for basis in [CoverageBasis::Relayed, CoverageBasis::Heard] {
            let r = coalition_report(&rec, &members, basis);
            let ratio = r.interception_ratio();
            prop_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of range");
            prop_assert!(r.covered_packets <= r.packets_delivered.max(r.covered_packets));
            prop_assert!(r.covered_packets <= delivered);
        }
    }

    /// Coalition coverage is monotone (non-decreasing) in the coalition size,
    /// for both placements.
    #[test]
    fn coalition_coverage_is_monotone_in_k(
        delivered in 1u64..30,
        relays in proptest::collection::vec((0u16..NUM_NODES, 0u64..40), 1..80),
        k_max in 1usize..8,
        seed in 0u64..1000,
    ) {
        let rec = build_recorder(delivered, &relays);
        for placement in [CoalitionPlacement::Random, CoalitionPlacement::Greedy] {
            let curve = coalition_curve(
                &rec,
                NUM_NODES,
                &endpoints(),
                k_max,
                placement,
                CoverageBasis::Relayed,
                seed,
            );
            prop_assert!(curve.len() <= k_max);
            for w in curve.windows(2) {
                prop_assert!(
                    w[1].interception_ratio() >= w[0].interception_ratio() - 1e-12,
                    "coverage shrank when the coalition grew ({placement:?})"
                );
            }
        }
    }

    /// The greedy coalition of size k covers at least as much as any single
    /// node (it starts from the best single node).
    #[test]
    fn greedy_dominates_every_singleton(
        delivered in 1u64..30,
        relays in proptest::collection::vec((0u16..NUM_NODES, 0u64..40), 1..60),
        k in 1usize..5,
    ) {
        let rec = build_recorder(delivered, &relays);
        let greedy = select_coalition_greedy(&rec, NUM_NODES, &endpoints(), k, CoverageBasis::Relayed);
        let greedy_ratio = coalition_report(&rec, &greedy, CoverageBasis::Relayed).interception_ratio();
        for n in 0..NUM_NODES {
            let node = NodeId(n);
            if endpoints().contains(&node) {
                continue;
            }
            let solo = coalition_report(&rec, &[node], CoverageBasis::Relayed).interception_ratio();
            prop_assert!(solo <= greedy_ratio + 1e-12);
        }
    }

    /// `highest_interception_ratio` equals the maximum over the per-node
    /// relay-count ratios it is defined from.
    #[test]
    fn highest_ratio_is_the_per_node_maximum(
        delivered in 1u64..40,
        relays in proptest::collection::vec((0u16..NUM_NODES, 0u64..40), 0..80),
    ) {
        let rec = build_recorder(delivered, &relays);
        let eps = endpoints();
        let (highest, worst) = highest_interception_ratio(&rec, NUM_NODES, &eps);
        let mut expected = 0.0f64;
        let mut expected_node = None;
        for n in 0..NUM_NODES {
            let node = NodeId(n);
            if eps.contains(&node) {
                continue;
            }
            let relayed = rec.relay_count(node);
            let ratio = relayed as f64 / delivered as f64;
            if ratio > expected {
                expected = ratio;
                expected_node = Some(node);
            }
        }
        prop_assert!((highest - expected).abs() < 1e-12);
        if expected > 0.0 {
            prop_assert_eq!(worst, expected_node);
        } else {
            prop_assert_eq!(worst, None);
        }
    }
}
