//! # manet-mck
//!
//! Bounded model checking over the deterministic engine.
//!
//! The attack matrix is Monte Carlo: it samples seeds, so it can only
//! estimate how bad an adversarial schedule can get.  This crate explores
//! instead of sampling: it branches on per-delivery decisions — deliver,
//! drop, or delay (reorder) each eligible reception within a bounded
//! horizon — through the engine's choice-injection hook
//! (`manet_netsim::choice`), checks an invariant at every explored state,
//! and returns either an exhaustive proof over the bounded schedule class
//! or a minimal counterexample as a replayable [`ChoiceTrace`].
//!
//! * [`hook`] — the choice-trace format and the scripted hook that drives
//!   one run through one schedule (and logs what it was offered).
//! * [`invariant`] — the invariant catalogue, delegating to the predicates
//!   shared with the Monte Carlo attack tests
//!   (`manet_experiments::invariants`).
//! * [`mod@explore`] — iterative-deepening exhaustive search with `fasthash`
//!   state deduplication, a run budget, and minimal-counterexample
//!   extraction.
//! * [`scenarios`] — stock small topologies (static corridor, one black
//!   hole) for the first targets.
//!
//! Replay contract: feeding a returned counterexample trace back through
//! [`explore::run_with_trace`] reproduces the violating run byte-identically
//! — same recorder trace, same counters, same fingerprint.  See
//! `docs/VERIFICATION.md` for the state-space model and bounds semantics.

pub mod explore;
pub mod hook;
pub mod invariant;
pub mod scenarios;

pub use explore::{
    explore, outcome_digest, run_with_trace, ExploreReport, ExploreSpec, RunOutcome, Verdict,
    Violation,
};
pub use hook::{ChoiceRecord, ChoiceTrace, RunLog, ScheduleAction, ScheduleHook};
pub use invariant::Invariant;
pub use scenarios::blackhole_corridor;
