//! The invariant catalogue the explorer can check at every explored state.
//!
//! Each variant delegates to the shared predicate in
//! `manet_experiments::invariants`, so the exhaustive explorer and the
//! Monte Carlo attack tests verify the same properties from one module.

use manet_experiments::invariants;
use manet_netsim::Recorder;

/// A property evaluated over the final state of every explored run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Invariant {
    /// No data traffic is ever absorbed by a hostile relay: a forged route
    /// never captures a single packet.  Holds exhaustively on hardened MTS;
    /// its minimal counterexamples on the un-hardened protocol are the
    /// worst-case forged-RREP schedules.
    NoAdversaryCapture,
    /// No single black hole absorbs more than the given fraction of the
    /// originated data packets (the paper's multipath dispersion bound).
    CaptureAtMost(f64),
    /// At least one data packet is delivered end-to-end within the horizon.
    DeliversData,
}

impl Invariant {
    /// Parse a CLI selector (`no-capture`, `capture<=F`, `delivers-data`).
    pub fn parse(s: &str) -> Option<Invariant> {
        match s {
            "no-capture" => Some(Invariant::NoAdversaryCapture),
            "delivers-data" => Some(Invariant::DeliversData),
            _ => {
                let frac = s.strip_prefix("capture<=")?;
                Some(Invariant::CaptureAtMost(frac.parse().ok()?))
            }
        }
    }

    /// Human-readable statement of the property.
    pub fn describe(&self) -> String {
        match self {
            Invariant::NoAdversaryCapture => {
                "no forged route ever captures a data packet".to_string()
            }
            Invariant::CaptureAtMost(f) => {
                format!("the black hole absorbs <= {f:.2} of originated data")
            }
            Invariant::DeliversData => "some data is delivered within the horizon".to_string(),
        }
    }

    /// Evaluate the property over one run's final recorder state.
    pub fn check(&self, recorder: &Recorder) -> Result<(), String> {
        match self {
            Invariant::NoAdversaryCapture => invariants::no_adversary_capture(recorder),
            Invariant::CaptureAtMost(f) => invariants::adversary_absorbs_at_most(recorder, *f),
            Invariant::DeliversData => invariants::delivers_data(recorder),
        }
    }
}
