//! The bounded exhaustive explorer.
//!
//! # State-space model
//!
//! One *state* is one complete deterministic run of the concrete engine
//! under a [`ChoiceTrace`] script.  The explorer searches the tree of
//! scripts: the root is the unforced schedule (zero interventions), and a
//! child extends its parent by one intervention (drop or delay) at an
//! eligible slot **strictly after** the parent's last intervention.  The
//! engine is deterministic, so a run's prefix up to a slot does not depend
//! on interventions at later slots — extending only rightward enumerates
//! every intervention set exactly once (a canonical enumeration, not a
//! heuristic pruning).
//!
//! The search deepens by intervention count (iterative deepening), so the
//! first violation found carries a **minimal** number of adversarial
//! choices.  Within the budget, exhausting the tree up to
//! `max_interventions` over `horizon` slots proves the invariant for every
//! delivery/drop/reorder schedule in that bounded class.
//!
//! State-hash deduplication (via `fasthash`) recognises runs whose full
//! behaviour (recorder trace, counters, observed choice points) coincides;
//! a duplicate's unexplored extensions are skipped only when its extension
//! window is covered by the first occurrence, so the skip is exact, never
//! heuristic.

use crate::hook::{ChoiceTrace, RunLog, ScheduleAction, ScheduleHook};
use crate::invariant::Invariant;
use manet_experiments::runner::run_scenario_hooked;
use manet_experiments::{RunMetrics, Scenario};
use manet_netsim::fasthash::{FxHashMap, FxHasher};
use manet_netsim::{Duration, Recorder};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// What to explore: scenario, bounds, and the property to check.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// The (serial-execution) scenario driven through the choice hook.
    pub scenario: Scenario,
    /// Number of leading eligible choice points subject to intervention.
    pub horizon: u32,
    /// Maximum interventions per schedule (search depth).
    pub max_interventions: u32,
    /// Maximum number of engine runs before giving up.
    pub budget: u64,
    /// Extra delivery delay applied by delay interventions.
    pub delay: Duration,
    /// Frame kinds eligible for intervention.
    pub kinds: Vec<&'static str>,
    /// The property checked at every explored state.
    pub invariant: Invariant,
}

/// The final state of one scripted run.
pub struct RunOutcome {
    /// Extracted per-run metrics.
    pub metrics: RunMetrics,
    /// The raw recorder (trace kept — fingerprints and invariants read it).
    pub recorder: Recorder,
    /// The choice points the script was offered.
    pub log: RunLog,
}

/// Execute `scenario` under `trace` on the concrete engine.  This is both
/// the explorer's step function and the counterexample replay path: same
/// trace in, byte-identical run out.
pub fn run_with_trace(scenario: &Scenario, trace: &ChoiceTrace) -> RunOutcome {
    let (hook, log) = ScheduleHook::new(trace);
    let (metrics, recorder) = run_scenario_hooked(scenario, Box::new(hook));
    let log = match Arc::try_unwrap(log) {
        Ok(m) => m.into_inner(),
        Err(arc) => arc.lock().clone(),
    };
    RunOutcome {
        metrics,
        recorder,
        log,
    }
}

/// Full-run fingerprint: the recorder trace (every transmission, delivery
/// and link event in order), the conservation counters, and the observed
/// choice-point sequence (sans actions — those are script inputs, not
/// behaviour).  Runs with equal fingerprints behaved identically.
pub fn outcome_digest(outcome: &RunOutcome) -> u64 {
    let mut h = FxHasher::default();
    let mut buf = String::new();
    for ev in outcome.recorder.trace() {
        buf.clear();
        use std::fmt::Write as _;
        let _ = write!(buf, "{ev:?}");
        buf.hash(&mut h);
    }
    outcome.recorder.originated_data_packets().hash(&mut h);
    outcome.recorder.delivered_data_packets().hash(&mut h);
    outcome.recorder.delivered_payload_bytes().hash(&mut h);
    outcome.recorder.adversary_drops().hash(&mut h);
    outcome.recorder.total_drops().hash(&mut h);
    outcome.log.eligible_seen.hash(&mut h);
    for p in &outcome.log.points {
        p.slot.hash(&mut h);
        p.at.as_secs().to_bits().hash(&mut h);
        p.from.hash(&mut h);
        p.to.hash(&mut h);
        p.kind.hash(&mut h);
        p.broadcast.hash(&mut h);
    }
    h.finish()
}

/// A found invariant violation, with its replayable script.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The complete decision script that reproduces the violation.
    pub trace: ChoiceTrace,
    /// Number of adversarial interventions (minimal by search order).
    pub choice_count: u32,
    /// Human-readable description of what was violated.
    pub reason: String,
    /// Fingerprint of the violating run (replay must reproduce it).
    pub state_hash: u64,
}

/// The explorer's answer.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every schedule in the bounded class satisfies the invariant.
    Proved,
    /// A schedule violating the invariant, minimal in choice count.
    Violated(Violation),
    /// The run budget ran out before the class was exhausted.
    BudgetExhausted,
}

/// Search statistics alongside the verdict.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The answer.
    pub verdict: Verdict,
    /// Engine runs executed.
    pub runs: u64,
    /// Distinct run fingerprints seen.
    pub distinct_states: u64,
    /// Runs whose extensions were skipped as exact duplicates.
    pub dedup_hits: u64,
    /// Largest number of eligible choice points any run exposed.
    pub max_eligible_seen: u64,
}

/// Exhaustively explore `spec`'s schedule class (see the module docs).
///
/// Iterative deepening by intervention count: all zero-choice schedules
/// first, then one-choice, then two-choice … so the first violation
/// returned is minimal in the number of adversarial choices.
pub fn explore(spec: &ExploreSpec) -> ExploreReport {
    // state fingerprint -> smallest extension-window start already expanded
    // from a run with this fingerprint.
    let mut seen: FxHashMap<u64, u32> = FxHashMap::default();
    let mut runs = 0u64;
    let mut dedup_hits = 0u64;
    let mut max_eligible = 0u64;
    let trace_of = |actions: &[(u32, ScheduleAction)]| ChoiceTrace {
        actions: actions.to_vec(),
        horizon: spec.horizon,
        delay: spec.delay,
        kinds: spec.kinds.clone(),
    };
    let report =
        |verdict, runs, seen: &FxHashMap<u64, u32>, dedup_hits, max_eligible| ExploreReport {
            verdict,
            runs,
            distinct_states: seen.len() as u64,
            dedup_hits,
            max_eligible_seen: max_eligible,
        };

    let mut frontier: Vec<Vec<(u32, ScheduleAction)>> = vec![Vec::new()];
    for depth in 0..=spec.max_interventions {
        let mut next: Vec<Vec<(u32, ScheduleAction)>> = Vec::new();
        for plan in &frontier {
            if runs >= spec.budget {
                return report(
                    Verdict::BudgetExhausted,
                    runs,
                    &seen,
                    dedup_hits,
                    max_eligible,
                );
            }
            let trace = trace_of(plan);
            let outcome = run_with_trace(&spec.scenario, &trace);
            runs += 1;
            max_eligible = max_eligible.max(outcome.log.eligible_seen);
            let state_hash = outcome_digest(&outcome);
            // The invariant is evaluated at every explored state, before any
            // deduplication: the first violation at this depth is minimal.
            if let Err(reason) = spec.invariant.check(&outcome.recorder) {
                let violation = Violation {
                    trace,
                    choice_count: depth,
                    reason,
                    state_hash,
                };
                return report(
                    Verdict::Violated(violation),
                    runs,
                    &seen,
                    dedup_hits,
                    max_eligible,
                );
            }
            if depth == spec.max_interventions {
                continue;
            }
            // Children intervene strictly after the parent's last slot, and
            // only at slots this run actually exposed (beyond
            // `eligible_seen` the script would never fire).
            let start = plan.last().map_or(0, |&(s, _)| s + 1);
            let limit = outcome.log.eligible_seen.min(u64::from(spec.horizon)) as u32;
            // Exact dedup: a behaviourally identical run was already
            // expanded from a window starting at or before ours, so every
            // child state of this run was (or will be) reached from it.
            match seen.get(&state_hash).copied() {
                Some(prev) if prev <= start => {
                    dedup_hits += 1;
                    continue;
                }
                _ => {
                    let entry = seen.entry(state_hash).or_insert(start);
                    *entry = (*entry).min(start);
                }
            }
            for slot in start..limit {
                for action in [ScheduleAction::Drop, ScheduleAction::Delay] {
                    let mut child = plan.clone();
                    child.push((slot, action));
                    next.push(child);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    report(Verdict::Proved, runs, &seen, dedup_hits, max_eligible)
}
