//! Stock small topologies for the explorer's first targets.
//!
//! Model checking needs *small* state spaces: a handful of static nodes in a
//! narrow corridor (so routes are multi-hop even at n ≤ 8 — the paper's
//! square field at constant density would collapse to one hop), one bulk TCP
//! flow, and one black hole drawn away from the endpoints.  Everything else
//! (protocol stacks, MAC, TCP, the attacker) is the full concrete stack the
//! Monte Carlo experiments run.

use manet_experiments::{AttackConfig, Protocol, Scenario};
use manet_netsim::{Duration, SimConfig};

/// A static multi-hop corridor with one bulk flow and one black hole.
///
/// `n` nodes are placed (deterministically from `seed`) in a 900 m × 150 m
/// corridor with the paper's 250 m radio range, zero mobility, and
/// `secs` simulated seconds.  Flow endpoints and the attacker are drawn
/// from the seed exactly as the paper-scale scenarios draw them.
pub fn blackhole_corridor(protocol: Protocol, n: u16, secs: f64, seed: u64) -> Scenario {
    assert!(n >= 4, "need at least endpoints + relay + attacker");
    let mut sim = SimConfig::paper_environment(0.0, seed);
    sim.num_nodes = n;
    sim.field_width = 900.0;
    sim.field_height = 150.0;
    sim.duration = Duration::from_secs(secs);
    Scenario::from_sim(protocol, sim).with_attack(AttackConfig::blackhole(1))
}
