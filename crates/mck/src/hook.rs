//! The scripted delivery-choice hook and the replayable choice-trace format.
//!
//! A [`ChoiceTrace`] is a complete decision script for one run: intervene
//! (drop or delay) at the listed eligible choice-point slots, deliver
//! everywhere else.  Because the engine is deterministic and consults the
//! hook in a deterministic order, feeding the same trace to
//! [`ScheduleHook`] twice reproduces the run byte-identically — that is the
//! replay contract the counterexample tests pin.

use manet_netsim::{ChoiceDecision, ChoicePoint, DeliveryChoiceHook, Duration, SimTime};
use manet_wire::NodeId;
use parking_lot::Mutex;
use std::sync::Arc;

/// One adversarial intervention kind the explorer branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleAction {
    /// Omit the reception (sender still sees MAC success).
    Drop,
    /// Deliver after the trace's extra delay, reordering the frame.
    Delay,
}

impl ScheduleAction {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ScheduleAction::Drop => "drop",
            ScheduleAction::Delay => "delay",
        }
    }
}

/// A replayable counterexample: the complete decision script of one run.
///
/// Eligible choice points (addressed receptions whose frame kind is in
/// `kinds`) are numbered 0, 1, 2, … in the engine's consultation order;
/// `actions` lists the slots at which the schedule intervenes.  Slots at or
/// beyond `horizon` always deliver.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoiceTrace {
    /// `(slot, action)` pairs, strictly increasing by slot.
    pub actions: Vec<(u32, ScheduleAction)>,
    /// Number of leading eligible choice points subject to intervention.
    pub horizon: u32,
    /// Extra delivery delay applied by [`ScheduleAction::Delay`].
    pub delay: Duration,
    /// Frame kinds eligible for intervention (`NetPacket::kind()` labels).
    pub kinds: Vec<&'static str>,
}

impl ChoiceTrace {
    /// The unforced schedule: zero interventions, every reception delivers.
    pub fn unforced(horizon: u32, delay: Duration, kinds: Vec<&'static str>) -> Self {
        ChoiceTrace {
            actions: Vec::new(),
            horizon,
            delay,
            kinds,
        }
    }

    /// Number of adversarial interventions in the script.
    pub fn choice_count(&self) -> u32 {
        self.actions.len() as u32
    }
}

/// One eligible choice point observed during a run (slots below the
/// horizon), in consultation order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoiceRecord {
    /// Eligible-point index (the slot the trace's actions refer to).
    pub slot: u32,
    /// Simulation time of the reception.
    pub at: SimTime,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Frame kind (`NetPacket::kind()` label).
    pub kind: &'static str,
    /// Broadcast reception (false: unicast delivery).
    pub broadcast: bool,
    /// The scripted intervention, `None` when the slot delivered normally.
    pub action: Option<ScheduleAction>,
}

/// What one scripted run observed: the choice points it was offered.
#[derive(Debug, Clone, Default)]
pub struct RunLog {
    /// Eligible points with slot < horizon, in consultation order.
    pub points: Vec<ChoiceRecord>,
    /// Total eligible points seen, including beyond the horizon.
    pub eligible_seen: u64,
}

/// The scripted [`DeliveryChoiceHook`] that drives the engine through one
/// [`ChoiceTrace`], logging every eligible choice point it is offered.
pub struct ScheduleHook {
    /// Scripted action per slot, indexed 0..horizon.
    plan: Vec<Option<ScheduleAction>>,
    delay: Duration,
    kinds: Vec<&'static str>,
    log: Arc<Mutex<RunLog>>,
}

impl ScheduleHook {
    /// Build the hook for `trace`; the returned handle reads the run log
    /// back out after the simulation consumed the hook.
    ///
    /// # Panics
    /// Panics if an action slot lies at or beyond the trace's horizon.
    pub fn new(trace: &ChoiceTrace) -> (Self, Arc<Mutex<RunLog>>) {
        let mut plan = vec![None; trace.horizon as usize];
        for &(slot, action) in &trace.actions {
            assert!(
                (slot as usize) < plan.len(),
                "action slot {slot} beyond horizon {}",
                trace.horizon
            );
            plan[slot as usize] = Some(action);
        }
        let log = Arc::new(Mutex::new(RunLog::default()));
        let hook = ScheduleHook {
            plan,
            delay: trace.delay,
            kinds: trace.kinds.clone(),
            log: Arc::clone(&log),
        };
        (hook, log)
    }
}

impl DeliveryChoiceHook for ScheduleHook {
    fn decide(&mut self, point: &ChoicePoint<'_>) -> ChoiceDecision {
        let kind = point.payload.kind();
        if !self.kinds.contains(&kind) {
            // Ineligible frame kinds deliver without consuming a slot, so
            // the branching factor stays bounded by the horizon.
            return ChoiceDecision::Deliver;
        }
        let mut log = self.log.lock();
        let slot = log.eligible_seen;
        log.eligible_seen += 1;
        if slot >= self.plan.len() as u64 {
            return ChoiceDecision::Deliver;
        }
        let action = self.plan[slot as usize];
        log.points.push(ChoiceRecord {
            slot: slot as u32,
            at: point.at,
            from: point.from,
            to: point.to,
            kind,
            broadcast: point.broadcast,
            action,
        });
        match action {
            None => ChoiceDecision::Deliver,
            Some(ScheduleAction::Drop) => ChoiceDecision::Drop,
            Some(ScheduleAction::Delay) => ChoiceDecision::Delay(self.delay),
        }
    }
}
