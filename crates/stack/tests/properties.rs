//! Property-based tests for the connection-table stack: however many flows a
//! run carries and however their endpoints overlap, the per-flow accounting
//! must partition the aggregate accounting exactly.

use manet_netsim::mobility::StaticPlacement;
use manet_netsim::{Duration, NodeStack, Recorder, SimConfig, Simulator};
use manet_routing::{Aodv, AodvConfig};
use manet_stack::{ManetStack, SharedTcpStats, TcpRunReport};
use manet_tcp::{FlowProfile, TcpConfig};
use manet_wire::{ConnectionId, NodeId};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// One random flow on the 5-node chain: (src, dst, byte budget).
fn flow_strategy() -> impl Strategy<Value = (u16, u16, u64)> {
    (0u16..5, 0u16..5, 2_000u64..40_000)
}

/// Run `flows` over AODV on a static 5-node chain and return the recorder and
/// the TCP report.
fn run_flows(flows: &[(u16, u16, u64)], secs: f64) -> (Recorder, TcpRunReport) {
    let n = 5u16;
    let mut sim_cfg = SimConfig::default();
    sim_cfg.num_nodes = n;
    sim_cfg.duration = Duration::from_secs(secs);
    let stats: SharedTcpStats = Arc::new(Mutex::new(TcpRunReport::default()));
    let stacks: Vec<Box<dyn NodeStack>> = (0..n)
        .map(|i| {
            let me = NodeId(i);
            let mut stack = ManetStack::new(
                me,
                Box::new(Aodv::new(me, AodvConfig::default())),
                Arc::clone(&stats),
            );
            for (idx, &(src, dst, bytes)) in flows.iter().enumerate() {
                let conn = ConnectionId(idx as u32);
                if src == i {
                    stack.add_sender(
                        conn,
                        NodeId(dst),
                        TcpConfig::default(),
                        FlowProfile {
                            bytes: Some(bytes),
                            ..Default::default()
                        },
                    );
                }
                if dst == i {
                    stack.add_receiver(conn, NodeId(src));
                }
            }
            Box::new(stack) as Box<dyn NodeStack>
        })
        .collect();
    let sim = Simulator::new(
        sim_cfg,
        Box::new(StaticPlacement::chain(n as usize, 180.0)),
        stacks,
    );
    let recorder = sim.run();
    let report = stats.lock().clone();
    (recorder, report)
}

proptest! {
    /// The per-flow byte and segment counters of the TCP report partition the
    /// aggregate exactly, and the recorder's per-connection packet counters
    /// partition the run totals — for any flow set, including flows sharing
    /// sources, sinks, or whole endpoint pairs.
    #[test]
    fn per_flow_accounting_partitions_the_aggregates(
        raw in proptest::collection::vec(flow_strategy(), 1..4)
    ) {
        // Make every flow's endpoints distinct nodes (src != dst); endpoint
        // *pairs* may still repeat across flows.
        let flows: Vec<(u16, u16, u64)> = raw
            .into_iter()
            .map(|(s, d, b)| if s == d { (s, (d + 1) % 5, b) } else { (s, d, b) })
            .collect();
        let (recorder, report) = run_flows(&flows, 12.0);

        // TCP report: per-flow rows sum to the aggregate, field by field.
        let agg = report.aggregate;
        prop_assert_eq!(report.flows.len(), flows.len());
        let sum_delivered: u64 = report.flows.values().map(|f| f.bytes_delivered).sum();
        let sum_acked: u64 = report.flows.values().map(|f| f.bytes_acked).sum();
        let sum_segments: u64 = report.flows.values().map(|f| f.segments_received).sum();
        let sum_ooo: u64 = report.flows.values().map(|f| f.out_of_order).sum();
        prop_assert_eq!(sum_delivered, agg.bytes_delivered);
        prop_assert_eq!(sum_acked, agg.bytes_acked);
        prop_assert_eq!(sum_segments, agg.segments_received);
        prop_assert_eq!(sum_ooo, agg.out_of_order);

        // Recorder: per-connection packet/byte counters partition the totals.
        let counters = recorder.flow_counters();
        let sum_orig: u64 = counters.values().map(|c| c.originated_data).sum();
        let sum_del: u64 = counters.values().map(|c| c.delivered_data).sum();
        let sum_bytes: u64 = counters.values().map(|c| c.delivered_bytes).sum();
        prop_assert_eq!(sum_orig, recorder.originated_data_packets());
        prop_assert_eq!(sum_del, recorder.delivered_data_packets());
        prop_assert_eq!(sum_bytes, recorder.delivered_payload_bytes());

        // A receiver never hands the application more than the sender had
        // acknowledged plus what is still in flight; with budgets, delivery
        // never exceeds the budget.
        for (idx, &(_, _, bytes)) in flows.iter().enumerate() {
            let f = &report.flows[&(idx as u32)];
            prop_assert!(f.bytes_delivered <= bytes);
            prop_assert!(f.bytes_acked <= bytes);
            if let Some(done) = f.completion_secs {
                prop_assert!(done > 0.0 && done <= 12.0);
                prop_assert_eq!(f.bytes_acked, bytes);
            }
        }
    }
}
