use super::*;
use manet_netsim::mobility::StaticPlacement;
use manet_netsim::{Recorder, SimConfig, Simulator};
use manet_routing::{Aodv, AodvConfig, Dsr, DsrConfig};
use mts_core::{Mts, MtsConfig};

enum Proto {
    Dsr,
    Aodv,
    Mts,
}

fn agent(p: &Proto, me: NodeId) -> Box<dyn RoutingAgent> {
    match p {
        Proto::Dsr => Box::new(Dsr::new(me, DsrConfig::default())),
        Proto::Aodv => Box::new(Aodv::new(me, AodvConfig::default())),
        Proto::Mts => Box::new(Mts::new(me, MtsConfig::default())),
    }
}

/// Build a 4-node chain with a TCP flow 0 -> 3 under the given protocol and
/// return (recorder, tcp report).
fn run_chain(p: Proto, secs: f64) -> (Recorder, TcpRunReport) {
    let n = 4u16;
    let mut sim_cfg = SimConfig::default();
    sim_cfg.num_nodes = n;
    sim_cfg.duration = Duration::from_secs(secs);
    let stats: SharedTcpStats = Arc::new(Mutex::new(TcpRunReport::default()));
    let stacks: Vec<Box<dyn NodeStack>> = (0..n)
        .map(|i| {
            let me = NodeId(i);
            let mut stack = ManetStack::new(me, agent(&p, me), Arc::clone(&stats));
            if i == 0 {
                stack.add_sender(
                    ConnectionId(0),
                    NodeId(n - 1),
                    TcpConfig::default(),
                    FlowProfile::bulk(),
                );
            }
            if i == n - 1 {
                stack.add_receiver(ConnectionId(0), NodeId(0));
            }
            Box::new(stack) as Box<dyn NodeStack>
        })
        .collect();
    let sim = Simulator::new(
        sim_cfg,
        Box::new(StaticPlacement::chain(n as usize, 200.0)),
        stacks,
    );
    let recorder = sim.run();
    let report = stats.lock().clone();
    (recorder, report)
}

#[test]
fn tcp_over_aodv_transfers_data_on_a_chain() {
    let (recorder, report) = run_chain(Proto::Aodv, 30.0);
    let stats = report.aggregate;
    assert!(
        stats.bytes_acked > 50_000,
        "bytes_acked={}",
        stats.bytes_acked
    );
    assert!(stats.bytes_delivered >= stats.bytes_acked / 2);
    assert!(recorder.delivered_data_packets() > 50);
    assert!(recorder.mean_delay_secs() > 0.0);
    // The single flow's report row matches the aggregate.
    assert_eq!(report.flows.len(), 1);
    let flow = &report.flows[&0];
    assert_eq!((flow.src, flow.dst), (NodeId(0), NodeId(3)));
    assert_eq!(flow.bytes_acked, stats.bytes_acked);
    assert_eq!(flow.bytes_delivered, stats.bytes_delivered);
    assert_eq!(flow.completion_secs, None, "unbounded flows never complete");
    // The recorder's per-connection counters carry the same flow.
    let counters = recorder.flow_counter(ConnectionId(0));
    assert_eq!(counters.delivered_data, recorder.delivered_data_packets());
    assert!(counters.delivery_rate() > 0.9);
}

#[test]
fn tcp_over_dsr_transfers_data_on_a_chain() {
    let (_recorder, report) = run_chain(Proto::Dsr, 30.0);
    assert!(
        report.aggregate.bytes_acked > 50_000,
        "bytes_acked={}",
        report.aggregate.bytes_acked
    );
}

#[test]
fn tcp_over_mts_transfers_data_on_a_chain() {
    let (recorder, report) = run_chain(Proto::Mts, 30.0);
    assert!(
        report.aggregate.bytes_acked > 50_000,
        "bytes_acked={}",
        report.aggregate.bytes_acked
    );
    // Steady-state zero-copy: every hand-off in a full protocol run shares
    // the transmitted payload allocation (unicast deliveries hand over the
    // sole reference; RREQ/RERR flood copies are inspected by reference and
    // never claimed).
    let perf = recorder.engine_perf();
    assert_eq!(
        perf.payload_deep_clones, 0,
        "a clean MTS run must not deep-copy any payload"
    );
    assert!(perf.payload_clones_avoided > 0);
    // MTS keeps checking the route, so control traffic includes CHECK packets.
    assert!(
        recorder
            .control_by_kind()
            .get("CHECK")
            .copied()
            .unwrap_or(0)
            > 0
    );
}

#[test]
fn intermediate_nodes_relay_and_are_recorded() {
    let (recorder, _) = run_chain(Proto::Aodv, 20.0);
    // Nodes 1 and 2 are the only possible relays on the chain.
    let relays = recorder.relay_counts();
    assert!(relays.keys().all(|n| n.0 == 1 || n.0 == 2));
    assert!(!relays.is_empty());
}

/// Two opposing flows between the same pair of nodes: each endpoint node
/// terminates a sender *and* a receiver — impossible under the pre-PR 5
/// sender-xor-receiver `TcpRole`.
#[test]
fn a_node_can_terminate_a_sender_and_a_receiver_concurrently() {
    let n = 4u16;
    let mut sim_cfg = SimConfig::default();
    sim_cfg.num_nodes = n;
    sim_cfg.duration = Duration::from_secs(30.0);
    let stats: SharedTcpStats = Arc::new(Mutex::new(TcpRunReport::default()));
    let stacks: Vec<Box<dyn NodeStack>> = (0..n)
        .map(|i| {
            let me = NodeId(i);
            let mut stack = ManetStack::new(
                me,
                Box::new(Aodv::new(me, AodvConfig::default())),
                Arc::clone(&stats),
            );
            if i == 0 {
                stack.add_sender(
                    ConnectionId(0),
                    NodeId(3),
                    TcpConfig::default(),
                    FlowProfile::bulk(),
                );
                stack.add_receiver(ConnectionId(1), NodeId(3));
                assert_eq!(stack.endpoint_count(), 2);
            }
            if i == 3 {
                stack.add_receiver(ConnectionId(0), NodeId(0));
                stack.add_sender(
                    ConnectionId(1),
                    NodeId(0),
                    TcpConfig::default(),
                    FlowProfile::bulk(),
                );
            }
            Box::new(stack) as Box<dyn NodeStack>
        })
        .collect();
    let sim = Simulator::new(
        sim_cfg,
        Box::new(StaticPlacement::chain(n as usize, 200.0)),
        stacks,
    );
    let recorder = sim.run();
    let report = stats.lock().clone();
    // Both directions made progress and were accounted separately.
    assert_eq!(report.flows.len(), 2);
    let fwd = &report.flows[&0];
    let rev = &report.flows[&1];
    assert_eq!((fwd.src, fwd.dst), (NodeId(0), NodeId(3)));
    assert_eq!((rev.src, rev.dst), (NodeId(3), NodeId(0)));
    assert!(
        fwd.bytes_acked > 10_000,
        "forward flow: {}",
        fwd.bytes_acked
    );
    assert!(
        rev.bytes_acked > 10_000,
        "reverse flow: {}",
        rev.bytes_acked
    );
    assert_eq!(
        report.aggregate.bytes_acked,
        fwd.bytes_acked + rev.bytes_acked
    );
    // Per-connection recorder counters stay disjoint and sum to the totals.
    let c0 = recorder.flow_counter(ConnectionId(0));
    let c1 = recorder.flow_counter(ConnectionId(1));
    assert_eq!(
        c0.delivered_data + c1.delivered_data,
        recorder.delivered_data_packets()
    );
    assert_eq!(
        c0.delivered_bytes + c1.delivered_bytes,
        recorder.delivered_payload_bytes()
    );
}

/// A staggered, budgeted flow starts late, finishes early, and reports a
/// completion time between the two.
#[test]
fn staggered_budgeted_flow_reports_completion() {
    let n = 3u16;
    let mut sim_cfg = SimConfig::default();
    sim_cfg.num_nodes = n;
    sim_cfg.duration = Duration::from_secs(30.0);
    let stats: SharedTcpStats = Arc::new(Mutex::new(TcpRunReport::default()));
    let stacks: Vec<Box<dyn NodeStack>> = (0..n)
        .map(|i| {
            let me = NodeId(i);
            let mut stack = ManetStack::new(
                me,
                Box::new(Aodv::new(me, AodvConfig::default())),
                Arc::clone(&stats),
            );
            if i == 0 {
                stack.add_sender(
                    ConnectionId(0),
                    NodeId(2),
                    TcpConfig::default(),
                    FlowProfile {
                        start: 5.0,
                        bytes: Some(50_000),
                        ..Default::default()
                    },
                );
            }
            if i == 2 {
                stack.add_receiver(ConnectionId(0), NodeId(0));
            }
            Box::new(stack) as Box<dyn NodeStack>
        })
        .collect();
    let sim = Simulator::new(
        sim_cfg,
        Box::new(StaticPlacement::chain(n as usize, 200.0)),
        stacks,
    );
    let recorder = sim.run();
    let report = stats.lock().clone();
    let flow = &report.flows[&0];
    assert_eq!(flow.bytes_acked, 50_000, "the budget caps the transfer");
    let done = flow
        .completion_secs
        .expect("a budgeted flow reports completion");
    assert!(done > 5.0, "cannot complete before the flow starts");
    assert!(done < 30.0, "50 kB over two hops completes well in-run");
    // Nothing was transmitted before the staggered start.
    let first_delivery = recorder.delivery_series().first().map(|(t, _)| t.as_secs());
    assert!(first_delivery.unwrap_or(f64::INFINITY) > 5.0);
}

#[test]
#[should_panic(expected = "already terminates")]
fn duplicate_connection_endpoints_are_rejected() {
    let stats: SharedTcpStats = Arc::new(Mutex::new(TcpRunReport::default()));
    let mut stack = ManetStack::new(
        NodeId(0),
        Box::new(Aodv::new(NodeId(0), AodvConfig::default())),
        stats,
    );
    stack.add_receiver(ConnectionId(3), NodeId(1));
    stack.add_receiver(ConnectionId(3), NodeId(2));
}
