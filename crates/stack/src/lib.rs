//! # manet-stack
//!
//! The per-node protocol stack used by the experiment runs.
//!
//! A [`ManetStack`] glues together, for one node:
//!
//! * a routing agent (DSR, AODV or MTS) that moves network packets,
//! * a **connection table**: any number of TCP Reno endpoints (senders and/or
//!   receivers), keyed by [`ConnectionId`] — inbound segments are demultiplexed
//!   to the owning endpoint by the connection id their data packet carries,
//! * the per-run recorder (data-packet originations are registered here so
//!   the delivery-rate metric sees packets even if routing drops them).
//!
//! Historically (through PR 4) a node held at most one `TcpRole` — sender
//! *xor* receiver *xor* pure router — which capped every scenario at one flow
//! endpoint per node.  The connection table makes the paper's single bulk
//! flow the degenerate one-entry case (asserted byte-identical by the golden
//! trace tests) while letting traffic-matrix scenarios terminate dozens of
//! concurrent flows on one node.
//!
//! Timer multiplexing uses the [`TimerClass`] namespaces; transport and
//! application timers are additionally *connection-scoped* through
//! [`TimerClass::scoped_token`], so two flows' retransmission timers on the
//! same node can never be confused.

use manet_netsim::fasthash::FxHashMap;
use manet_netsim::telemetry::TelemetryEvent;
use manet_netsim::{Ctx, Duration, NodeStack, SimTime, TimerToken};
use manet_routing::agent::{RoutingAgent, RoutingStats, TimerClass};
use manet_tcp::{FlowProfile, TcpConfig, TcpOutcome, TcpReceiver, TcpSender};
use manet_wire::{
    ConnectionId, DataPacket, Frame, NetPacket, NodeId, PacketId, SharedPacket, TcpSegment,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Aggregate TCP statistics of one run, summed over every flow by the stacks
/// at run end.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TcpRunStats {
    /// Bytes acknowledged end-to-end (sender side).
    pub bytes_acked: u64,
    /// Data segments transmitted by the senders (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Fast retransmits.
    pub fast_retransmits: u64,
    /// Data segments received at the sinks (including out-of-order duplicates).
    pub segments_received: u64,
    /// Distinct in-order bytes delivered to the receiving applications.
    pub bytes_delivered: u64,
    /// Out-of-order arrivals at the sinks.
    pub out_of_order: u64,
    /// Route switches performed by the routing layer at sender nodes.
    pub route_switches: u64,
}

/// End-of-run TCP statistics of one flow (one connection-table entry pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowTcpStats {
    /// TCP sender node.
    pub src: NodeId,
    /// TCP receiver node.
    pub dst: NodeId,
    /// Bytes acknowledged end-to-end (sender side).
    pub bytes_acked: u64,
    /// Distinct in-order bytes delivered to the receiving application.
    pub bytes_delivered: u64,
    /// Data segments received at the sink (incl. duplicates / out-of-order).
    pub segments_received: u64,
    /// Out-of-order arrivals at the sink.
    pub out_of_order: u64,
    /// Seconds from run start until the flow's whole byte budget was
    /// acknowledged (`None` while incomplete or for unbounded flows).
    pub completion_secs: Option<f64>,
}

impl Default for FlowTcpStats {
    fn default() -> Self {
        FlowTcpStats {
            src: NodeId(0),
            dst: NodeId(0),
            bytes_acked: 0,
            bytes_delivered: 0,
            segments_received: 0,
            out_of_order: 0,
            completion_secs: None,
        }
    }
}

/// Everything the stacks report about a run's TCP traffic: the aggregate
/// counters plus one row per connection.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TcpRunReport {
    /// Counters summed over every flow.
    pub aggregate: TcpRunStats,
    /// Per-flow statistics, keyed by the raw connection id (a `BTreeMap` so
    /// iteration order is deterministic for reports).
    pub flows: BTreeMap<u32, FlowTcpStats>,
}

impl TcpRunReport {
    /// The per-flow row of `conn`, created default if absent.
    fn flow_mut(&mut self, conn: ConnectionId) -> &mut FlowTcpStats {
        self.flows.entry(conn.0).or_default()
    }
}

/// Shared, thread-safe handle to the run's TCP report.
pub type SharedTcpStats = Arc<Mutex<TcpRunReport>>;

/// One TCP endpoint terminated at this node.
enum TcpEndpoint {
    /// Sender towards `peer`.
    Sender {
        peer: NodeId,
        sender: Box<TcpSender>,
    },
    /// Receiving sink; ACKs go back to `peer`.
    Receiver {
        peer: NodeId,
        receiver: Box<TcpReceiver>,
    },
    /// Analytic background flow towards `peer` (hybrid engine): no segments,
    /// no timers, no per-packet state — the flow's bytes move through the
    /// engine's fluid model and the endpoint only copies the fluid ledger
    /// into the run report at run end.
    Fluid { peer: NodeId },
}

/// The full protocol stack of one node.
pub struct ManetStack {
    me: NodeId,
    agent: Box<dyn RoutingAgent>,
    /// Connection table: inbound segments demux here by [`ConnectionId`].
    conns: FxHashMap<ConnectionId, TcpEndpoint>,
    /// Insertion order of the table, for deterministic start-up pumping.
    order: Vec<ConnectionId>,
    /// Monotonic counter for globally unique data-packet ids.
    next_packet: u64,
    stats: SharedTcpStats,
}

impl ManetStack {
    /// Build the stack for node `me` with an empty connection table; add
    /// endpoints with [`ManetStack::add_sender`] / [`ManetStack::add_receiver`].
    /// `stats` is the shared sink for end-of-run TCP statistics.
    pub fn new(me: NodeId, agent: Box<dyn RoutingAgent>, stats: SharedTcpStats) -> Self {
        ManetStack {
            me,
            agent,
            conns: FxHashMap::default(),
            order: Vec::new(),
            next_packet: 0,
            stats,
        }
    }

    fn insert(&mut self, conn: ConnectionId, endpoint: TcpEndpoint) {
        assert!(
            conn.0 <= u16::MAX.into(),
            "connection ids must fit the 16-bit timer scope (got {})",
            conn.0
        );
        let prev = self.conns.insert(conn, endpoint);
        assert!(
            prev.is_none(),
            "connection {} already terminates at node {}",
            conn.0,
            self.me
        );
        self.order.push(conn);
    }

    /// Terminate the sending side of `conn` at this node: a TCP Reno sender
    /// towards `peer` shaped by `profile`.
    pub fn add_sender(
        &mut self,
        conn: ConnectionId,
        peer: NodeId,
        tcp: TcpConfig,
        profile: FlowProfile,
    ) {
        self.insert(
            conn,
            TcpEndpoint::Sender {
                peer,
                sender: Box::new(TcpSender::with_profile(conn, tcp, profile)),
            },
        );
    }

    /// Terminate the receiving side of `conn` at this node; ACKs go back to
    /// `peer`.
    pub fn add_receiver(&mut self, conn: ConnectionId, peer: NodeId) {
        self.insert(
            conn,
            TcpEndpoint::Receiver {
                peer,
                receiver: Box::new(TcpReceiver::new(conn)),
            },
        );
    }

    /// Terminate the sending side of a *fluid* (analytic background) flow of
    /// `conn` at this node.  The flow itself runs inside the engine's fluid
    /// model ([`manet_netsim::FluidConfig::explicit`]); this lightweight
    /// endpoint only surfaces its ledger row in the TCP run report.
    pub fn add_fluid(&mut self, conn: ConnectionId, peer: NodeId) {
        self.insert(conn, TcpEndpoint::Fluid { peer });
    }

    /// Number of TCP endpoints terminated at this node.
    pub fn endpoint_count(&self) -> usize {
        self.conns.len()
    }

    /// The routing agent's statistics (for tests and reports).
    pub fn routing_stats(&self) -> RoutingStats {
        self.agent.stats()
    }

    fn fresh_packet_id(&mut self) -> PacketId {
        let id = PacketId((u64::from(self.me.0) << 40) | self.next_packet);
        self.next_packet += 1;
        id
    }

    /// Wrap a TCP segment into a data packet and hand it to the routing agent.
    fn send_segment(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, segment: TcpSegment) {
        let id = self.fresh_packet_id();
        let packet = DataPacket::new(id, self.me, dst, segment);
        let now = ctx.now();
        let rec = ctx.recorder();
        rec.record_originated(id, segment.conn, packet.carries_data(), now);
        if rec.telemetry.enabled() {
            let t = now.as_secs();
            let shard = rec.telemetry.shard();
            rec.telemetry.emit(TelemetryEvent::Originate {
                t,
                shard,
                node: self.me.0,
                conn: segment.conn.0,
                seq: segment.seq,
                data: packet.carries_data(),
                bytes: segment.payload_len,
            });
            if rec
                .telemetry
                .traced(segment.conn.0, segment.seq, packet.carries_data())
            {
                rec.telemetry.emit(TelemetryEvent::Provenance {
                    t,
                    shard,
                    stage: "originate",
                    node: self.me.0,
                    conn: segment.conn.0,
                    seq: segment.seq,
                    kind: "DATA",
                });
            }
        }
        self.agent.send_data(ctx, packet);
    }

    /// Telemetry hook: a protocol timer of `class` fired on this node.
    fn note_timer(&mut self, ctx: &mut Ctx<'_>, class: &'static str, scope: u16) {
        if !ctx.recorder().telemetry.enabled() {
            return;
        }
        let t = ctx.now().as_secs();
        let rec = ctx.recorder();
        let shard = rec.telemetry.shard();
        rec.telemetry.emit(TelemetryEvent::Timer {
            t,
            shard,
            node: self.me.0,
            class,
            scope,
        });
    }

    /// Apply a [`TcpOutcome`] of connection `conn`: transmit segments, arm the
    /// (connection-scoped) retransmission timer and schedule any application
    /// wake-up the flow shape asked for.
    fn apply_outcome(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnectionId,
        dst: NodeId,
        outcome: TcpOutcome,
    ) {
        for seg in outcome.segments {
            self.send_segment(ctx, dst, seg);
        }
        let scope = conn.0 as u16;
        if let Some(timer) = outcome.timer {
            ctx.schedule_timer(
                timer.delay,
                TimerClass::Transport.scoped_token(scope, timer.generation),
            );
        }
        if let Some(delay) = outcome.wakeup {
            ctx.schedule_timer(delay, TimerClass::Application.scoped_token(scope, 0));
        }
    }

    /// Drive the sender of `conn` with `drive`, then apply the outcome.
    fn drive_sender<F>(&mut self, ctx: &mut Ctx<'_>, conn: ConnectionId, drive: F)
    where
        F: FnOnce(&mut TcpSender, SimTime) -> TcpOutcome,
    {
        let now = ctx.now();
        if let Some(TcpEndpoint::Sender { peer, sender }) = self.conns.get_mut(&conn) {
            let peer = *peer;
            let was_complete = sender.completion_time().is_some();
            let outcome = drive(sender, now);
            let just_completed = !was_complete && sender.completion_time().is_some();
            let bytes = sender.bytes_acked();
            self.apply_outcome(ctx, conn, peer, outcome);
            if just_completed {
                let rec = ctx.recorder();
                if rec.telemetry.enabled() {
                    let shard = rec.telemetry.shard();
                    rec.telemetry.emit(TelemetryEvent::FlowComplete {
                        t: now.as_secs(),
                        shard,
                        node: self.me.0,
                        conn: conn.0,
                        bytes,
                    });
                }
            }
        }
    }

    /// Process data packets the routing layer says terminate at this node,
    /// demultiplexing each carried segment to its connection's endpoint.
    fn deliver(&mut self, ctx: &mut Ctx<'_>, packets: Vec<DataPacket>) {
        for packet in packets {
            let conn = packet.segment.conn;
            match self.conns.get_mut(&conn) {
                Some(TcpEndpoint::Receiver { peer, receiver }) if packet.segment.carries_data() => {
                    let ack = receiver.on_segment(&packet.segment);
                    let peer = *peer;
                    self.send_segment(ctx, peer, ack);
                }
                Some(TcpEndpoint::Sender { .. })
                    if packet.segment.flags.ack && !packet.segment.carries_data() =>
                {
                    let segment = packet.segment;
                    self.drive_sender(ctx, conn, |s, now| s.on_ack(&segment, now));
                }
                // Pure ACKs reflected to a receiver, data arriving at a
                // sender, or a packet terminating at a node with no endpoint
                // for its connection: nothing to do (it still counted as
                // delivered in the recorder).
                _ => {}
            }
        }
    }
}

impl NodeStack for ManetStack {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.agent.start(ctx);
        for i in 0..self.order.len() {
            let conn = self.order[i];
            let start = match self.conns.get(&conn) {
                Some(TcpEndpoint::Sender { sender, .. }) => sender.profile().start,
                _ => continue,
            };
            if start > 0.0 {
                // Staggered flow: open it with an application timer.
                ctx.schedule_timer(
                    Duration::from_secs(start),
                    TimerClass::Application.scoped_token(conn.0 as u16, 0),
                );
            } else {
                self.drive_sender(ctx, conn, |s, now| s.pump(now));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if TimerClass::Transport.owns(token) {
            self.note_timer(ctx, "transport", token.scope());
            let conn = ConnectionId(u32::from(token.scope()));
            let generation = token.seq();
            self.drive_sender(ctx, conn, |s, now| s.on_timer(generation, now));
            return;
        }
        if TimerClass::Application.owns(token) {
            self.note_timer(ctx, "application", token.scope());
            // Flow start or shape wake-up; both are an idempotent pump.
            let conn = ConnectionId(u32::from(token.scope()));
            self.drive_sender(ctx, conn, |s, now| s.on_wakeup(now));
            return;
        }
        // Routing (and RoutingAux) timers go to the agent; unknown classes are
        // ignored.
        if TimerClass::Routing.owns(token) {
            self.note_timer(ctx, "routing", token.scope());
        } else if TimerClass::RoutingAux.owns(token) {
            self.note_timer(ctx, "routing_aux", token.scope());
        }
        self.agent.on_timer(ctx, token);
    }

    fn on_receive(&mut self, ctx: &mut Ctx<'_>, from: NodeId, packet: SharedPacket) {
        let delivered = self.agent.on_packet(ctx, from, packet);
        if !delivered.is_empty() {
            self.deliver(ctx, delivered);
        }
    }

    fn on_promiscuous(&mut self, _ctx: &mut Ctx<'_>, _frame: &Frame) {
        // Promiscuous captures are accounted by the engine's recorder; the
        // eavesdropper needs no protocol behaviour of its own.
    }

    fn on_link_failure(&mut self, ctx: &mut Ctx<'_>, next_hop: NodeId, packet: NetPacket) {
        self.agent.on_link_failure(ctx, next_hop, packet);
    }

    fn on_run_end(&mut self, ctx: &mut Ctx<'_>) {
        let mut report = self.stats.lock();
        let mut any_sender = false;
        for conn in &self.order {
            match &self.conns[conn] {
                TcpEndpoint::Sender { peer, sender } => {
                    any_sender = true;
                    let agg = &mut report.aggregate;
                    agg.bytes_acked += sender.bytes_acked();
                    agg.segments_sent += sender.segments_sent();
                    agg.retransmissions += sender.retransmissions();
                    agg.timeouts += sender.timeouts();
                    agg.fast_retransmits += sender.fast_retransmits();
                    let flow = report.flow_mut(*conn);
                    flow.src = self.me;
                    flow.dst = *peer;
                    flow.bytes_acked = sender.bytes_acked();
                    flow.completion_secs = sender.completion_time().map(|t| t.as_secs());
                }
                TcpEndpoint::Receiver { peer, receiver } => {
                    let r = receiver.stats();
                    let agg = &mut report.aggregate;
                    agg.segments_received += r.segments_received;
                    agg.bytes_delivered += r.bytes_delivered;
                    agg.out_of_order += r.out_of_order;
                    let flow = report.flow_mut(*conn);
                    flow.src = *peer;
                    flow.dst = self.me;
                    flow.bytes_delivered = r.bytes_delivered;
                    flow.segments_received = r.segments_received;
                    flow.out_of_order = r.out_of_order;
                }
                TcpEndpoint::Fluid { peer } => {
                    // Copy the engine's fluid ledger row (the engine flushes
                    // it before run end).  Fluid bytes deliberately stay out
                    // of the aggregate TCP counters: they never crossed the
                    // packet pipeline, so folding them in would break the
                    // per-segment conservation invariants.
                    let peer = *peer;
                    let totals = ctx.recorder().fluid_flow(conn.0);
                    let flow = report.flow_mut(*conn);
                    flow.src = self.me;
                    flow.dst = peer;
                    if let Some(t) = totals {
                        flow.bytes_acked = t.delivered_bytes;
                        flow.bytes_delivered = t.delivered_bytes;
                        flow.completion_secs = t.completion_secs;
                    }
                }
            }
        }
        if any_sender {
            report.aggregate.route_switches += self.agent.stats().route_switches;
        }
    }
}

#[cfg(test)]
mod tests;
