//! End-to-end attack tests on the paper's 50-node scenario (ISSUE 2
//! acceptance criteria): hostile relays measurably degrade delivery against
//! the clean run at the same seed, k-colluder coalitions cover MTS's traffic
//! no better than single-path DSR's, and the attack matrix is deterministic
//! per seed.
//!
//! The properties themselves live in `manet_experiments::invariants`, shared
//! with the bounded model-checking explorer (`manet_mck`): these tests sample
//! them over seeds at paper scale, the explorer proves them exhaustively over
//! adversarial schedules at small scale.

use mts_repro::experiments::invariants;
use mts_repro::prelude::*;

/// One paper-environment run under an attack, at reduced duration.
fn attack_run(protocol: Protocol, attack: AttackConfig, seed: u64, secs: f64) -> RunMetrics {
    attack_run_at(protocol, attack, 10.0, seed, secs)
}

/// Same, at an explicit maximum node speed.
fn attack_run_at(
    protocol: Protocol,
    attack: AttackConfig,
    speed: f64,
    seed: u64,
    secs: f64,
) -> RunMetrics {
    let mut scenario = Scenario::paper(protocol, speed, seed);
    scenario.sim.duration = Duration::from_secs(secs);
    run_scenario(&scenario.with_attack(attack))
}

/// Seed-averaged metrics of a (protocol, attack, speed) cell.
fn averaged(protocol: Protocol, attack: AttackConfig, speed: f64, secs: f64) -> RunMetrics {
    let runs: Vec<RunMetrics> = [1u64, 2]
        .iter()
        .map(|&seed| attack_run_at(protocol, attack, speed, seed, secs))
        .collect();
    RunMetrics::average(&runs)
}

#[test]
fn grayhole_degrades_delivery_against_the_clean_run_at_the_same_seed() {
    for protocol in Protocol::ALL {
        let clean = attack_run(protocol, AttackConfig::none(), 1, 30.0);
        let gray = attack_run(protocol, AttackConfig::grayhole(2, 0.5), 1, 30.0);
        invariants::attack_degrades_delivery(&clean, &gray)
            .unwrap_or_else(|e| panic!("{} gray hole: {e}", protocol.name()));
        invariants::clean_run_sees_no_adversary(&clean)
            .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    }
}

#[test]
fn blackhole_hits_harder_than_grayhole() {
    // Full drop is at least as damaging as a 50 % gray hole, and the hostile
    // relays actually discard traffic (the route attraction works).
    let gray = attack_run(Protocol::Aodv, AttackConfig::grayhole(2, 0.5), 1, 30.0);
    let black = attack_run(Protocol::Aodv, AttackConfig::blackhole(2), 1, 30.0);
    invariants::blackhole_at_least_as_damaging(&gray, &black).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn mts_coalition_coverage_not_worse_than_dsr() {
    // Acceptance criterion (b): for k-colluder coalitions under greedy
    // worst-case placement, MTS's coalition interception ratio is <= DSR's at
    // equal k, averaged over seeds, on the paper's 50-node scenario.  The
    // union coverage is over packets *received to relay* (the Fig. 7 basis) —
    // MTS keeps moving the traffic across disjoint paths, so the best k
    // relays of an MTS run see no more of the session than the best k relays
    // of a single-path DSR run.
    let seeds = [1u64, 2, 3];
    let curve_avg = |protocol: Protocol| -> Vec<f64> {
        let mut avg = vec![0.0f64; 5];
        for &seed in &seeds {
            let mut scenario = Scenario::paper(protocol, 10.0, seed);
            scenario.sim.duration = Duration::from_secs(60.0);
            let (_, recorder) = run_scenario_with_recorder(&scenario);
            let endpoints = scenario.endpoints();
            let curve = coalition_curve(
                &recorder,
                scenario.sim.num_nodes,
                &endpoints,
                5,
                CoalitionPlacement::Greedy,
                CoverageBasis::Relayed,
                seed,
            );
            for (k, report) in curve.iter().enumerate() {
                avg[k] += report.interception_ratio() / seeds.len() as f64;
            }
        }
        avg
    };
    let dsr = curve_avg(Protocol::Dsr);
    let mts = curve_avg(Protocol::Mts);
    for k in 0..5 {
        assert!(
            mts[k] <= dsr[k] + 0.02,
            "k={}: MTS coalition coverage {:.4} must not exceed DSR's {:.4}",
            k + 1,
            mts[k],
            dsr[k]
        );
    }
    // The curves are monotone in k (coalitions only ever gain members).
    invariants::monotone_nondecreasing(&mts).unwrap_or_else(|e| panic!("MTS coalition {e}"));
}

#[test]
fn coalition_attack_surfaces_in_run_metrics() {
    let m = attack_run(
        Protocol::Dsr,
        AttackConfig::coalition(3, CoalitionPlacement::Greedy),
        1,
        20.0,
    );
    invariants::capture_ratio_meaningful(m.coalition_interception_ratio, 0.0)
        .unwrap_or_else(|e| panic!("coalition {e}"));
    // A bigger coalition can only see more.
    let bigger = attack_run(
        Protocol::Dsr,
        AttackConfig::coalition(5, CoalitionPlacement::Greedy),
        1,
        20.0,
    );
    invariants::monotone_nondecreasing(&[
        m.coalition_interception_ratio,
        bigger.coalition_interception_ratio,
    ])
    .unwrap_or_else(|e| panic!("coalition size axis: {e}"));
}

#[test]
fn control_jamming_disturbs_routing_and_data_jamming_disturbs_data() {
    let ctrl = attack_run(
        Protocol::Aodv,
        AttackConfig::jamming(2, JamTarget::Control, 0.8),
        1,
        20.0,
    );
    assert!(
        ctrl.jammed_frames > 0,
        "control jammers must corrupt frames"
    );
    let data = attack_run(
        Protocol::Aodv,
        AttackConfig::jamming(2, JamTarget::Data, 0.8),
        1,
        20.0,
    );
    assert!(data.jammed_frames > 0, "data jammers must corrupt frames");
    let clean = attack_run(Protocol::Aodv, AttackConfig::none(), 1, 20.0);
    invariants::clean_run_sees_no_adversary(&clean).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        data.throughput_packets < clean.throughput_packets,
        "data jamming must cost throughput (clean {}, jammed {})",
        clean.throughput_packets,
        data.throughput_packets
    );
}

#[test]
fn mobile_eavesdropper_changes_the_run_but_stays_deterministic() {
    let clean = attack_run(Protocol::Mts, AttackConfig::none(), 1, 20.0);
    let eve_a = attack_run(Protocol::Mts, AttackConfig::mobile_eavesdropper(), 1, 20.0);
    let eve_b = attack_run(Protocol::Mts, AttackConfig::mobile_eavesdropper(), 1, 20.0);
    assert_eq!(
        eve_a, eve_b,
        "mobile-eavesdropper runs are seed-deterministic"
    );
    // Steering one node alters the mobility trace, so the run differs from
    // the clean baseline.
    assert_ne!(clean, eve_a);
}

#[test]
fn hardened_mts_strictly_improves_delivery_under_black_holes_at_every_speed() {
    // ISSUE 3 acceptance criterion: under 2 black holes the hardened MTS
    // (suspicious-RREP cross-validation + relay suspicion) must strictly beat
    // the unhardened protocol at every canonical speed, seed-averaged.  The
    // margins are large — unhardened MTS keeps ~0.5 thanks to route checking,
    // hardened MTS recovers to ~0.97+ because the forged replies never poison
    // a table (measured at 30 s x 2 seeds: 0.50 vs 0.99 at 1 m/s, 0.50 vs
    // 0.97 at 10 m/s, 0.50 vs 0.99 at 20 m/s).
    for speed in [1.0, 10.0, 20.0] {
        let plain = averaged(Protocol::Mts, AttackConfig::blackhole(2), speed, 30.0);
        let hard = averaged(
            Protocol::MtsHardened,
            AttackConfig::blackhole(2),
            speed,
            30.0,
        );
        invariants::hardening_recovers_delivery(&plain, &hard, 0.9)
            .unwrap_or_else(|e| panic!("speed {speed}: {e}"));
    }
}

#[test]
fn hardened_mts_is_metric_identical_to_plain_mts_on_clean_runs() {
    // Hardening only reacts to implausible route replies; a clean run never
    // produces one, so arming the defense must not change a single metric.
    let plain = attack_run(Protocol::Mts, AttackConfig::none(), 1, 20.0);
    let hard = attack_run(Protocol::MtsHardened, AttackConfig::none(), 1, 20.0);
    assert_eq!(plain, hard);
}

#[test]
fn wormhole_captures_traffic_for_every_protocol() {
    // The tunnel shortcuts route discovery, so a meaningful share of the
    // session's delivered data crosses the colluding pair — for every
    // protocol (measured at 30 s x 2 seeds: DSR 0.48, AODV 0.44, MTS 0.18).
    // Delivery is NOT destroyed: a wormhole is an attraction attack; the
    // shortcut often even helps end-to-end delivery while it eavesdrops.
    for protocol in Protocol::ALL {
        let m = averaged(protocol, AttackConfig::wormhole(), 10.0, 30.0);
        invariants::capture_ratio_meaningful(m.attacker_capture_ratio, 0.05)
            .unwrap_or_else(|e| panic!("{} wormhole: {e}", protocol.name()));
        assert!(
            m.delivery_rate > 0.8,
            "{}: the wormhole attracts, it does not drop (delivery {:.4})",
            protocol.name(),
            m.delivery_rate
        );
    }
}

#[test]
fn rushing_attracts_routes_and_stays_deterministic() {
    // Zero-backoff relays win the duplicate-suppression race; at the paper's
    // moderate speed their capture of MTS traffic is small but real
    // (measured ~0.06 at 30 s x 2 seeds), and clean runs capture nothing.
    let rushed = averaged(Protocol::Mts, AttackConfig::rushing(2), 10.0, 30.0);
    invariants::capture_ratio_meaningful(rushed.attacker_capture_ratio, 0.0)
        .unwrap_or_else(|e| panic!("rushing: {e}"));
    let clean = averaged(Protocol::Mts, AttackConfig::none(), 10.0, 30.0);
    invariants::clean_run_sees_no_adversary(&clean).unwrap_or_else(|e| panic!("{e}"));
    // Determinism: same seed, same run.
    let a = attack_run(Protocol::Aodv, AttackConfig::rushing(2), 5, 15.0);
    let b = attack_run(Protocol::Aodv, AttackConfig::rushing(2), 5, 15.0);
    assert_eq!(a, b);
}

#[test]
fn attack_matrix_is_deterministic_per_seed_and_covers_the_axis() {
    let spec = AttackSweepSpec {
        protocols: vec![Protocol::Dsr, Protocol::Mts],
        attacks: vec![
            AttackConfig::none(),
            AttackConfig::grayhole(2, 0.5),
            AttackConfig::jamming(1, JamTarget::Data, 0.9),
        ],
        speeds: vec![10.0],
        seeds: vec![1, 2],
        duration: 12.0,
    };
    let a = attack_matrix(&spec);
    let b = attack_matrix(&spec);
    assert_eq!(a, b, "the matrix must be reproducible byte-for-byte");
    assert_eq!(a.cells.len(), 6);
    let text = render_attack_matrix(&a);
    for label in ["clean", "grayhole(x2,p=0.5)", "jam-data(x1,p=0.9)"] {
        assert!(text.contains(label), "matrix must render row {label}");
    }
}
