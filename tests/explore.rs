//! Replay contract of the bounded model checker (`manet_mck`, see
//! docs/VERIFICATION.md).
//!
//! Four guarantees are pinned here, end to end through the full protocol
//! stack:
//!
//! 1. Every counterexample the explorer emits **replays byte-identically**:
//!    feeding the returned [`ChoiceTrace`] back through the concrete engine
//!    reproduces the violating run's fingerprint — with telemetry off *and*
//!    on (telemetry is observational, never causal).
//! 2. The stock hunt's minimal counterexample is pinned as a **golden
//!    regression**: the same schedule, choice count, violation and
//!    fingerprint come back on every commit.  Regenerate after an
//!    intentional engine change with
//!    `GOLDEN_REGEN=1 cargo test --release --test explore -- --nocapture`.
//! 3. A `Drop` intervention is the engine's message-omission fault: it is
//!    accounted as a `schedule_drop` (never blamed on the MAC or the
//!    adversary) and surfaces through the telemetry stream.
//! 4. Zero adversarial choices means **zero perturbation**: an unforced
//!    explored schedule is trace-identical to the plain serial engine run,
//!    whatever the seed or horizon (property-tested).

use manet_experiments::runner::run_scenario_traced;
use manet_experiments::Protocol;
use manet_mck::{
    blackhole_corridor, explore, outcome_digest, run_with_trace, ChoiceTrace, ExploreSpec,
    Invariant, ScheduleAction, Verdict,
};
use manet_netsim::telemetry::event::DropKind;
use manet_netsim::{DropReason, Duration, TelemetryConfig, TraceEvent};
use proptest::prelude::*;

/// One reorder quantum, matching `reproduce --explore`.
fn delay() -> Duration {
    Duration::from_secs(0.002)
}

/// The stock hunt of `reproduce --explore`: plain MTS on the blackhole
/// corridor, asking whether any schedule pushes the black hole's absorption
/// past the bound the unforced run respects.
fn hunt_spec() -> ExploreSpec {
    ExploreSpec {
        scenario: blackhole_corridor(Protocol::Mts, 8, 2.0, 9),
        horizon: 12,
        max_interventions: 2,
        budget: 2000,
        delay: delay(),
        kinds: vec!["DATA"],
        invariant: Invariant::CaptureAtMost(0.65),
    }
}

/// FNV-1a over the Debug rendering of every trace event (same digest as
/// `tests/golden_trace.rs`).
fn trace_digest(trace: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = String::new();
    for ev in trace {
        buf.clear();
        use std::fmt::Write as _;
        let _ = write!(buf, "{ev:?}");
        for b in buf.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

// ---------------------------------------------------------------------------
// 1. + 2.  Counterexamples replay byte-identically; the minimal trace is a
//          pinned golden regression.
// ---------------------------------------------------------------------------

/// The minimal counterexample of the stock hunt, measured at the PR that
/// introduced the explorer: delaying the first two endpoint-to-endpoint DATA
/// deliveries pushes TCP onto the forged route, raising the black hole's
/// absorption from 0.55 (unforced) to 0.75.
const GOLDEN_MIN_ACTIONS: [(u32, ScheduleAction); 2] =
    [(0, ScheduleAction::Delay), (1, ScheduleAction::Delay)];
const GOLDEN_FINGERPRINT: u64 = 0xc4de_25c2_4bc3_2428;

#[test]
fn stock_hunt_counterexample_is_minimal_pinned_and_replays_byte_identically() {
    let spec = hunt_spec();
    let report = explore(&spec);
    let v = match report.verdict {
        Verdict::Violated(v) => v,
        other => panic!("stock hunt must find a violation, got {other:?}"),
    };
    if std::env::var("GOLDEN_REGEN").is_ok() {
        println!("actions: {:?}", v.trace.actions);
        println!("choice_count: {}", v.choice_count);
        println!("fingerprint: {:#018x}", v.state_hash);
        println!("reason: {}", v.reason);
        return;
    }
    assert_eq!(
        v.trace.actions, GOLDEN_MIN_ACTIONS,
        "minimal schedule drifted"
    );
    assert_eq!(v.choice_count, 2);
    assert_eq!(v.state_hash, GOLDEN_FINGERPRINT, "violating run drifted");

    // Replay without telemetry: the explorer's own step function.
    let plain = run_with_trace(&spec.scenario, &v.trace);
    assert_eq!(
        outcome_digest(&plain),
        v.state_hash,
        "plain replay diverged"
    );
    assert!(
        spec.invariant.check(&plain.recorder).is_err(),
        "replay must still violate the invariant"
    );

    // Replay with the telemetry stream on: observational, so the fingerprint
    // must not move, and the NDJSON-renderable event stream must exist.
    let traced = spec.scenario.clone().with_telemetry(TelemetryConfig {
        enabled: true,
        window_secs: Some(1.0),
        trace_packet: None,
    });
    let observed = run_with_trace(&traced, &v.trace);
    assert_eq!(
        outcome_digest(&observed),
        v.state_hash,
        "telemetry-on replay diverged"
    );
    assert!(
        !observed.recorder.telemetry.events().is_empty(),
        "telemetry replay must emit the event stream"
    );
}

#[test]
fn stock_proof_holds_exhaustively_at_n6() {
    let mut spec = hunt_spec();
    spec.scenario = blackhole_corridor(Protocol::MtsHardened, 6, 2.0, 9);
    spec.invariant = Invariant::CaptureAtMost(0.25);
    let report = explore(&spec);
    assert!(
        matches!(report.verdict, Verdict::Proved),
        "hardened MTS must keep the capture bound over the whole schedule class, got {:?}",
        report.verdict
    );
    assert!(report.runs > 1, "a proof must actually explore the class");
}

// ---------------------------------------------------------------------------
// 3.  Drop interventions are schedule drops, visible in telemetry.
// ---------------------------------------------------------------------------

#[test]
fn drop_intervention_is_accounted_as_schedule_drop() {
    let scenario = blackhole_corridor(Protocol::Mts, 8, 2.0, 9).with_telemetry(TelemetryConfig {
        enabled: true,
        window_secs: None,
        trace_packet: None,
    });
    let trace = ChoiceTrace {
        actions: vec![(0, ScheduleAction::Drop)],
        horizon: 12,
        delay: delay(),
        kinds: vec!["DATA"],
    };
    let outcome = run_with_trace(&scenario, &trace);
    assert_eq!(
        outcome.recorder.drops(DropReason::ScheduleDrop),
        1,
        "exactly the scripted omission must be recorded"
    );
    let schedule_drops = outcome
        .recorder
        .telemetry
        .events()
        .iter()
        .filter(|ev| {
            matches!(
                ev,
                manet_netsim::telemetry::TelemetryEvent::Drop {
                    reason: DropKind::ScheduleDrop,
                    ..
                }
            )
        })
        .count();
    assert_eq!(schedule_drops, 1, "the omission must surface in telemetry");
    assert_eq!(
        outcome.log.points.first().map(|p| p.action),
        Some(Some(ScheduleAction::Drop))
    );
}

// ---------------------------------------------------------------------------
// 4.  Zero choices == zero perturbation (property-tested).
// ---------------------------------------------------------------------------

proptest! {
    /// An explored schedule with no interventions is byte-identical to the
    /// plain serial engine run: same trace, same counters.  This is the
    /// soundness anchor of the whole search — the root of every explore tree
    /// IS the unforced run.
    #[test]
    fn unforced_schedule_matches_the_plain_engine(
        seed in 1u64..200,
        horizon in 0u32..32,
        n in 4u16..9,
    ) {
        let scenario = blackhole_corridor(Protocol::Mts, n, 1.0, seed);
        let (_, plain) = run_scenario_traced(&scenario);
        let hooked = run_with_trace(
            &scenario,
            &ChoiceTrace::unforced(horizon, delay(), vec!["RREQ", "RREP", "DATA"]),
        );
        prop_assert_eq!(trace_digest(plain.trace()), trace_digest(hooked.recorder.trace()));
        prop_assert_eq!(plain.trace().len(), hooked.recorder.trace().len());
        prop_assert_eq!(
            plain.originated_data_packets(),
            hooked.recorder.originated_data_packets()
        );
        prop_assert_eq!(
            plain.delivered_data_packets(),
            hooked.recorder.delivered_data_packets()
        );
        prop_assert_eq!(plain.total_drops(), hooked.recorder.total_drops());
        prop_assert_eq!(plain.collisions(), hooked.recorder.collisions());
    }
}
