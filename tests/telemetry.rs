//! End-to-end contracts of the telemetry stream (see docs/OBSERVABILITY.md).
//!
//! Golden-digest identity under telemetry lives in `tests/golden_trace.rs`
//! and `tests/shard_equivalence.rs`; this suite pins the *content* of the
//! stream itself, on real scenario runs through the whole stack:
//!
//! 1. **Monotonicity** — per shard, timestamps never go backwards, and the
//!    cross-shard merge interleaves by `(t, shard)`.
//! 2. **Conservation** — per connection, payload-carrying originations equal
//!    deliveries plus terminal drops plus a non-negative in-flight residual.
//! 3. **Round-trip** — every event encodes to one NDJSON line that parses
//!    back to an identical event.
//! 4. **Provenance** — a tagged packet's trail starts at `originate` and
//!    walks the pipeline stages in simulation-time order.

use manet_experiments::runner::run_scenario_with_recorder;
use manet_experiments::{AttackConfig, Protocol, Scenario};
use manet_netsim::telemetry::{
    check_conservation, check_monotone_per_shard, validate_lines, write_ndjson, StringSink,
    TelemetryEvent,
};
use manet_netsim::{Duration, Execution, Recorder, TelemetryConfig};
use proptest::prelude::*;

fn telemetry_on(trace_packet: Option<(u32, u64)>) -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        window_secs: Some(1.0),
        trace_packet,
    }
}

fn run(scenario: Scenario) -> Recorder {
    run_scenario_with_recorder(&scenario).1
}

/// Assert the three stream invariants on a recorder's collected events.
fn assert_stream_invariants(recorder: &Recorder, context: &str) {
    let events = recorder.telemetry.events();
    assert!(!events.is_empty(), "{context}: no telemetry collected");
    check_monotone_per_shard(events)
        .unwrap_or_else(|e| panic!("{context}: timestamps not monotone: {e}"));
    let ledger = check_conservation(events)
        .unwrap_or_else(|e| panic!("{context}: conservation violated: {e}"));
    assert!(
        !ledger.per_conn.is_empty(),
        "{context}: conservation ledger saw no connections"
    );
    let mut sink = StringSink::default();
    write_ndjson(events, &mut sink).expect("string sink never fails");
    let parsed = validate_lines(&sink.0)
        .unwrap_or_else(|e| panic!("{context}: NDJSON failed to round-trip: {e}"));
    assert_eq!(
        parsed.as_slice(),
        events,
        "{context}: round-tripped events differ"
    );
}

#[test]
fn serial_paper_run_satisfies_the_stream_invariants() {
    let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1).with_telemetry(telemetry_on(None));
    scenario.sim.duration = Duration::from_secs(10.0);
    let recorder = run(scenario);
    assert_stream_invariants(&recorder, "serial paper run");
    // The sampler closed at least one window per simulated second.
    let windows = recorder
        .telemetry
        .events()
        .iter()
        .filter(|ev| matches!(ev, TelemetryEvent::Window { .. }))
        .count();
    assert!(windows >= 5, "only {windows} sampler windows in 10 s");
}

#[test]
fn sharded_blackhole_multiflow_run_satisfies_the_stream_invariants() {
    let mut scenario = Scenario::random_pairs(Protocol::MtsHardened, 100, 4, 10.0, 1)
        .with_attack(AttackConfig::blackhole(2))
        .with_telemetry(telemetry_on(None));
    scenario.sim.duration = Duration::from_secs(10.0);
    scenario.sim.execution = Execution::Sharded {
        shards: 4,
        workers: 2,
        window: None,
    };
    let recorder = run(scenario);
    assert_stream_invariants(&recorder, "sharded black-hole run");
    let events = recorder.telemetry.events();
    // The merge interleaves the per-shard streams by (t, shard): globally
    // non-decreasing time, shard id breaking ties.
    for pair in events.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            (a.time(), a.shard()) <= (b.time(), b.shard()),
            "merged stream out of order: {a:?} then {b:?}"
        );
    }
    // All four stripes contributed events.
    let shards: std::collections::BTreeSet<u16> = events.iter().map(|ev| ev.shard()).collect();
    assert_eq!(shards.len(), 4, "expected all 4 shards, saw {shards:?}");
}

#[test]
fn hybrid_run_windows_carry_the_fluid_ledger() {
    let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1).with_telemetry(telemetry_on(None));
    scenario.sim.duration = Duration::from_secs(10.0);
    scenario = scenario.with_background(manet_netsim::FluidConfig {
        flows: 6,
        flow_bytes: 15_000,
        demand_bytes_per_sec: 4_000.0,
        ..manet_netsim::FluidConfig::default()
    });
    let recorder = run(scenario);
    assert_stream_invariants(&recorder, "hybrid paper run");
    let events = recorder.telemetry.events();
    // The sampler windows surface the fluid layer's per-region epoch state.
    let fluid_windows = events
        .iter()
        .filter(|ev| {
            matches!(
                ev,
                TelemetryEvent::Window { fluid_demand, fluid_alloc, .. }
                    if !fluid_demand.is_empty() && !fluid_alloc.is_empty()
            )
        })
        .count();
    assert!(
        fluid_windows > 0,
        "no sampler window carried fluid demand/alloc maps"
    );
    // Analytic completions emit the same flow_complete events TCP flows do,
    // tagged with the fluid connection id and the bytes the ledger moved.
    let completions: Vec<_> = events
        .iter()
        .filter_map(|ev| match ev {
            TelemetryEvent::FlowComplete { conn, bytes, .. }
                if *conn >= manet_netsim::FLUID_CONN_BASE =>
            {
                Some((*conn, *bytes))
            }
            _ => None,
        })
        .collect();
    assert!(
        !completions.is_empty(),
        "bounded 15 kB fluid flows at 4 kB/s should complete within 10 s"
    );
    for (conn, bytes) in completions {
        let totals = recorder
            .fluid_flow(conn)
            .unwrap_or_else(|| panic!("no ledger for completed fluid conn {conn}"));
        assert_eq!(
            bytes, totals.delivered_bytes,
            "conn {conn}: flow_complete bytes disagree with the fluid ledger"
        );
        assert!(totals.completion_secs.is_some());
    }
}

#[test]
fn tagged_packet_walks_the_pipeline_in_order() {
    let mut scenario =
        Scenario::paper(Protocol::Mts, 10.0, 1).with_telemetry(telemetry_on(Some((0, 0))));
    scenario.sim.duration = Duration::from_secs(10.0);
    let recorder = run(scenario);
    let trail: Vec<(&'static str, f64)> = recorder
        .telemetry
        .events()
        .iter()
        .filter_map(|ev| match ev {
            TelemetryEvent::Provenance {
                stage,
                t,
                conn,
                seq,
                ..
            } => {
                assert_eq!((*conn, *seq), (0, 0), "provenance leaked another packet");
                Some((*stage, *t))
            }
            _ => None,
        })
        .collect();
    assert!(!trail.is_empty(), "the tagged packet left no trail");
    assert_eq!(trail[0].0, "originate", "trail must start at the source");
    assert!(
        trail.iter().any(|(stage, _)| *stage == "deliver"),
        "segment 0:0 of the paper flow is delivered within 10 s: {trail:?}"
    );
    for pair in trail.windows(2) {
        assert!(
            pair[0].1 <= pair[1].1,
            "provenance went back in time: {trail:?}"
        );
    }
}

#[test]
fn provenance_survives_the_cross_shard_merge() {
    let mut scenario =
        Scenario::paper(Protocol::Mts, 10.0, 1).with_telemetry(telemetry_on(Some((0, 0))));
    scenario.sim.duration = Duration::from_secs(10.0);
    scenario.sim.execution = Execution::Sharded {
        shards: 4,
        workers: 2,
        window: None,
    };
    let recorder = run(scenario);
    let trail: Vec<&TelemetryEvent> = recorder
        .telemetry
        .events()
        .iter()
        .filter(|ev| matches!(ev, TelemetryEvent::Provenance { .. }))
        .collect();
    assert!(!trail.is_empty(), "the tagged packet left no sharded trail");
    let shards: std::collections::BTreeSet<u16> = trail.iter().map(|ev| ev.shard()).collect();
    // The paper flow's endpoints sit on opposite sides of the area, so the
    // packet's 4-stripe trail must span more than one shard — and every
    // shard handoff must be stamped by a cross_shard (or wormhole tunnel)
    // stage, not appear out of thin air.
    assert!(shards.len() > 1, "trail never left shard {shards:?}");
    assert!(
        trail.iter().any(|ev| matches!(
            ev,
            TelemetryEvent::Provenance { stage, .. } if *stage == "cross_shard"
        )),
        "multi-shard trail has no cross_shard stage"
    );
}

/// A run with telemetry disabled must match an enabled run exactly once the
/// wall-clock phase timers are masked: same events processed, same counters —
/// the recording layer adds no work to the simulation itself.
#[test]
fn disabled_and_enabled_runs_agree_on_engine_perf() {
    let mut base = Scenario::paper(Protocol::Mts, 10.0, 1);
    base.sim.duration = Duration::from_secs(10.0);
    let off = run(base.clone());
    let on = run(base.with_telemetry(telemetry_on(None)));
    assert_eq!(off.telemetry.events().len(), 0);
    assert!(!on.telemetry.events().is_empty());
    assert_eq!(
        off.engine_perf().without_phase_timers(),
        on.engine_perf().without_phase_timers(),
        "telemetry changed the engine's perf counters"
    );
}

proptest! {
    /// Seed-randomized sweep of the three stream invariants on small
    /// multi-flow scenarios, across serial and sharded execution: whatever
    /// the seed, speed and shard count, timestamps stay monotone per shard,
    /// every connection's ledger balances, and the NDJSON encoding
    /// round-trips exactly.
    #[test]
    fn stream_invariants_hold_for_random_scenarios(
        seed in 0u64..500,
        max_speed in 2.0f64..20.0,
        shards in 1u16..4,
    ) {
        let mut scenario = Scenario::random_pairs(Protocol::Mts, 30, 2, max_speed, seed)
            .with_telemetry(telemetry_on(None));
        scenario.sim.duration = Duration::from_secs(5.0);
        if shards > 1 {
            scenario.sim.execution = Execution::Sharded { shards, workers: 2, window: None };
        }
        let recorder = run(scenario);
        let events = recorder.telemetry.events();
        prop_assert!(!events.is_empty());
        let monotone = check_monotone_per_shard(events);
        prop_assert!(monotone.is_ok(), "monotonicity: {:?}", monotone);
        let ledger = check_conservation(events);
        prop_assert!(ledger.is_ok(), "conservation: {:?}", ledger);
        let mut sink = StringSink::default();
        write_ndjson(events, &mut sink).expect("string sink never fails");
        let parsed = validate_lines(&sink.0);
        prop_assert!(parsed.is_ok(), "round-trip: {:?}", parsed);
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.as_slice(), events);
    }
}
