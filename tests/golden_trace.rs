//! Golden-trace pinning for the paper scenarios.
//!
//! The PR 5 connection-table refactor (and any future stack change) must keep
//! single-flow paper runs **byte-identical**: the same transmissions, the same
//! deliveries, the same MAC outcomes at the same times.  These tests pin a
//! digest of the full recorder trace — generated from the pre-refactor stack —
//! so a behavioural change anywhere in wire/netsim/routing/transport/stack
//! shows up as a digest mismatch instead of silently shifting the figures.
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_trace -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use manet_experiments::runner::run_scenario_traced;
use manet_experiments::{Protocol, Scenario};
use manet_netsim::{Duration, TraceEvent};

/// FNV-1a over the Debug rendering of every trace event: stable across runs
/// (no randomized hashers) and sensitive to any reordering, retiming or
/// kind/size change of any transmission.
fn trace_digest(trace: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = String::new();
    for ev in trace {
        buf.clear();
        use std::fmt::Write as _;
        let _ = write!(buf, "{ev:?}");
        for b in buf.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Everything one golden row pins about a run.
#[derive(Debug, PartialEq)]
struct GoldenRow {
    protocol: Protocol,
    trace_digest: u64,
    trace_len: usize,
    originated: u64,
    delivered: u64,
    control_tx: u64,
    collisions: u64,
    link_failures: u64,
    bytes_acked: u64,
    bytes_delivered: u64,
}

fn measure(protocol: Protocol) -> GoldenRow {
    let mut scenario = Scenario::paper(protocol, 10.0, 1);
    scenario.sim.duration = Duration::from_secs(30.0);
    let (metrics, recorder) = run_scenario_traced(&scenario);
    GoldenRow {
        protocol,
        trace_digest: trace_digest(recorder.trace()),
        trace_len: recorder.trace().len(),
        originated: recorder.originated_data_packets(),
        delivered: recorder.delivered_data_packets(),
        control_tx: recorder.control_transmissions(),
        collisions: recorder.collisions(),
        link_failures: recorder.link_failures(),
        bytes_acked: metrics.tcp_bytes_acked,
        bytes_delivered: recorder.delivered_payload_bytes(),
    }
}

/// Measured from the pre-refactor (PR 4) single-flow stack: paper scenario,
/// 10 m/s, seed 1, 30 simulated seconds.
const GOLDEN: [GoldenRow; 3] = [
    GoldenRow {
        protocol: Protocol::Dsr,
        trace_digest: 16152132416890033848,
        trace_len: 15983,
        originated: 1017,
        delivered: 1015,
        control_tx: 179,
        collisions: 1483,
        link_failures: 47,
        bytes_acked: 917000,
        bytes_delivered: 1015000,
    },
    GoldenRow {
        protocol: Protocol::Aodv,
        trace_digest: 6229608777755142515,
        trace_len: 61532,
        originated: 3159,
        delivered: 3124,
        control_tx: 587,
        collisions: 2766,
        link_failures: 12,
        bytes_acked: 3057000,
        bytes_delivered: 3124000,
    },
    GoldenRow {
        protocol: Protocol::Mts,
        trace_digest: 9826943569750941382,
        trace_len: 24423,
        originated: 1327,
        delivered: 1270,
        control_tx: 794,
        collisions: 542,
        link_failures: 51,
        bytes_acked: 1269000,
        bytes_delivered: 1270000,
    },
];

/// Attack-matrix pin: delivered / adversary-drop counts of one hostile cell
/// per protocol variant (2 black holes, 10 m/s, seed 1, 20 s).  Together with
/// the clean-trace digests above this keeps the `reproduce --attacks` numbers
/// stable across the connection-table refactor.
const GOLDEN_ATTACK: [(Protocol, u64, u64, u64); 4] = [
    (Protocol::Dsr, 5, 0, 5),
    (Protocol::Aodv, 5, 0, 5),
    (Protocol::Mts, 5, 0, 5),
    (Protocol::MtsHardened, 421, 397, 0),
];

#[test]
fn attack_matrix_cells_are_pinned_at_equal_seeds() {
    use manet_experiments::runner::run_scenario_with_recorder;
    use manet_experiments::AttackConfig;
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    for &(protocol, originated, delivered, adversary_drops) in &GOLDEN_ATTACK {
        let mut scenario =
            Scenario::paper(protocol, 10.0, 1).with_attack(AttackConfig::blackhole(2));
        scenario.sim.duration = Duration::from_secs(20.0);
        let (_, recorder) = run_scenario_with_recorder(&scenario);
        let row = (
            protocol,
            recorder.originated_data_packets(),
            recorder.delivered_data_packets(),
            recorder.adversary_drops(),
        );
        if regen {
            println!("    ({:?}, {}, {}, {}),", row.0, row.1, row.2, row.3);
            continue;
        }
        assert_eq!(
            row,
            (protocol, originated, delivered, adversary_drops),
            "{protocol}: the black-hole attack cell drifted from the pinned \
             pre-refactor numbers"
        );
    }
}

#[test]
fn paper_single_flow_runs_are_byte_identical_to_the_pre_refactor_stack() {
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    for golden in &GOLDEN {
        let row = measure(golden.protocol);
        if regen {
            println!("    {row:#?},");
            continue;
        }
        assert_eq!(
            &row, golden,
            "{}: the paper scenario's recorder trace drifted from the \
             pinned pre-refactor run (see the module docs for regeneration)",
            golden.protocol
        );
    }
}

/// Telemetry observes, never perturbs (docs/OBSERVABILITY.md): running the
/// same paper scenarios with the full telemetry stream ON — events, 1 s
/// sampler windows and a provenance tag — must reproduce the **same** pinned
/// digests as the telemetry-off golden rows above, while actually collecting
/// a non-empty event stream.
#[test]
fn telemetry_enabled_runs_keep_the_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return; // the pinned rows are regenerated by the test above
    }
    for golden in &GOLDEN {
        let mut scenario = Scenario::paper(golden.protocol, 10.0, 1).with_telemetry(
            manet_netsim::TelemetryConfig {
                enabled: true,
                window_secs: Some(1.0),
                trace_packet: Some((0, 0)),
            },
        );
        scenario.sim.duration = Duration::from_secs(30.0);
        let (metrics, recorder) = run_scenario_traced(&scenario);
        let row = GoldenRow {
            protocol: golden.protocol,
            trace_digest: trace_digest(recorder.trace()),
            trace_len: recorder.trace().len(),
            originated: recorder.originated_data_packets(),
            delivered: recorder.delivered_data_packets(),
            control_tx: recorder.control_transmissions(),
            collisions: recorder.collisions(),
            link_failures: recorder.link_failures(),
            bytes_acked: metrics.tcp_bytes_acked,
            bytes_delivered: recorder.delivered_payload_bytes(),
        };
        assert_eq!(
            &row, golden,
            "{}: enabling telemetry changed the pinned golden trace",
            golden.protocol
        );
        assert!(
            !recorder.telemetry.events().is_empty(),
            "{}: the telemetry-on run collected no events",
            golden.protocol
        );
    }
}

/// The fluid layer's Off-means-identical contract against the pinned
/// digests: a `background` config with **zero** fluid flows builds no fluid
/// state, draws no RNG and schedules no epoch events, so the paper runs
/// must reproduce the same golden rows byte for byte (docs/TRAFFIC.md).
#[test]
fn zero_flow_background_keeps_the_golden_digests() {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        return; // the pinned rows are regenerated by the test above
    }
    for golden in &GOLDEN {
        let mut scenario =
            Scenario::paper(golden.protocol, 10.0, 1).with_background(manet_netsim::FluidConfig {
                flows: 0,
                ..manet_netsim::FluidConfig::default()
            });
        scenario.sim.duration = Duration::from_secs(30.0);
        let (metrics, recorder) = run_scenario_traced(&scenario);
        let row = GoldenRow {
            protocol: golden.protocol,
            trace_digest: trace_digest(recorder.trace()),
            trace_len: recorder.trace().len(),
            originated: recorder.originated_data_packets(),
            delivered: recorder.delivered_data_packets(),
            control_tx: recorder.control_transmissions(),
            collisions: recorder.collisions(),
            link_failures: recorder.link_failures(),
            bytes_acked: metrics.tcp_bytes_acked,
            bytes_delivered: recorder.delivered_payload_bytes(),
        };
        assert_eq!(
            &row, golden,
            "{}: a zero-flow fluid background changed the pinned golden trace",
            golden.protocol
        );
        assert!(recorder.fluid_flows().is_empty());
    }
}

/// The flip side of the contract: with telemetry at its default (off), the
/// event buffer stays empty — the hot path pays one predictable branch per
/// hook site and allocates nothing.
#[test]
fn disabled_telemetry_collects_nothing() {
    let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1);
    scenario.sim.duration = Duration::from_secs(10.0);
    let (_, recorder) = run_scenario_traced(&scenario);
    assert!(!recorder.telemetry.enabled());
    assert!(recorder.telemetry.events().is_empty());
}
