//! Cross-crate integration tests: the full stack (wire formats, simulator,
//! routing protocols, TCP Reno, security metrics, experiment harness) run
//! end-to-end on the paper's scenario at reduced duration.
//!
//! These tests assert the *qualitative* properties the paper's figures rest
//! on, not absolute numbers: all three protocols move TCP data, MTS spreads
//! traffic over more intermediate nodes, MTS pays more control overhead, and
//! the whole pipeline is deterministic for a fixed seed.

use mts_repro::prelude::*;

/// A shortened paper-environment run of one protocol.
fn short_run(protocol: Protocol, speed: f64, seed: u64, secs: f64) -> RunMetrics {
    let mut scenario = Scenario::paper(protocol, speed, seed);
    scenario.sim.duration = Duration::from_secs(secs);
    run_scenario(&scenario)
}

#[test]
fn all_protocols_deliver_tcp_traffic_in_the_paper_environment() {
    for protocol in Protocol::ALL {
        let m = short_run(protocol, 5.0, 1, 20.0);
        assert!(
            m.data_packets_generated > 0,
            "{}: the TCP source never generated data",
            protocol.name()
        );
        assert!(
            m.throughput_packets > 0,
            "{}: no data packet reached the destination (generated {})",
            protocol.name(),
            m.data_packets_generated
        );
        assert!(
            m.control_overhead > 0,
            "{}: no routing traffic at all",
            protocol.name()
        );
        assert!(m.delivery_rate > 0.0 && m.delivery_rate <= 1.0);
    }
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let a = short_run(Protocol::Mts, 10.0, 7, 15.0);
    let b = short_run(Protocol::Mts, 10.0, 7, 15.0);
    assert_eq!(a, b, "identical seeds must give identical runs");
    let c = short_run(Protocol::Mts, 10.0, 8, 15.0);
    assert_ne!(a, c, "different seeds should differ");
    // The paper's single flow is the degenerate one-row case of the
    // connection-table accounting.
    assert_eq!(a.per_flow.len(), 1);
    assert_eq!(
        a.per_flow[0].packets_delivered, a.throughput_packets,
        "the single flow carries the whole run"
    );
}

/// The multi-flow stack holds the same determinism contract as the paper's
/// single flow: a random-pairs traffic matrix produces identical runs across
/// both event-queue backends, and the per-flow metrics are well-formed
/// (goodput rows sum to the aggregate throughput, Jain's fairness in [0, 1]).
/// The full-scale variant (n = 500, 50 flows, trace-diffed) runs in
/// `bench_flows` / CI's perf-smoke job; this keeps a debug-build-sized copy
/// in tier 1.
#[test]
fn multi_flow_runs_are_deterministic_across_queue_backends() {
    use mts_repro::netsim::EventQueueKind;
    let build = |queue: EventQueueKind| {
        let mut scenario = Scenario::random_pairs(Protocol::Mts, 100, 10, 10.0, 3);
        scenario.sim.duration = Duration::from_secs(10.0);
        scenario.sim.event_queue = queue;
        scenario
    };
    let calendar = run_scenario(&build(EventQueueKind::Calendar));
    let heap = run_scenario(&build(EventQueueKind::Heap));
    assert_eq!(
        calendar, heap,
        "multi-flow runs must be queue-backend identical"
    );
    assert_eq!(calendar.per_flow.len(), 10);
    assert!(calendar.fairness_index >= 0.0 && calendar.fairness_index <= 1.0);
    assert!(
        calendar.per_flow.iter().any(|f| f.packets_delivered > 0),
        "at least one flow must move data"
    );
    let summed: u64 = calendar.per_flow.iter().map(|f| f.packets_delivered).sum();
    assert_eq!(
        summed, calendar.throughput_packets,
        "per-flow deliveries partition the aggregate"
    );
    let goodput: f64 = calendar
        .per_flow
        .iter()
        .map(|f| f.goodput_bytes_per_sec)
        .sum();
    assert!(goodput > 0.0);
}

#[test]
fn mts_emits_checking_traffic_and_baselines_do_not() {
    let mut mts = Scenario::paper(Protocol::Mts, 5.0, 3);
    mts.sim.duration = Duration::from_secs(20.0);
    let (_, mts_rec) = run_scenario_with_recorder(&mts);
    assert!(
        mts_rec.control_by_kind().get("CHECK").copied().unwrap_or(0) > 0,
        "MTS must emit route-checking packets"
    );

    let mut aodv = Scenario::paper(Protocol::Aodv, 5.0, 3);
    aodv.sim.duration = Duration::from_secs(20.0);
    let (_, aodv_rec) = run_scenario_with_recorder(&aodv);
    assert_eq!(
        aodv_rec
            .control_by_kind()
            .get("CHECK")
            .copied()
            .unwrap_or(0),
        0
    );
}

#[test]
#[ignore = "measured, not fixable by duration: AODV route churn inflates its CUMULATIVE \
            relay set at every run length tried (300 s x 5 seeds: AODV 24.4 vs MTS 22.2 \
            participants; 25 s shows the same ordering).  The cumulative participating-node \
            count rewards AODV for an instability the paper's instantaneous-spreading \
            argument does not: each route break recruits a fresh relay chain, while MTS \
            reuses its stored disjoint set.  MTS's spreading advantage is captured by the \
            relay-share std-dev (Fig. 6) and the k-coalition coverage metrics instead \
            (see tests/attacks.rs::mts_coalition_coverage_not_worse_than_dsr).  \
            Tracked in ROADMAP.md open items"]
fn mts_spreads_traffic_over_at_least_as_many_nodes_as_the_baselines() {
    // Investigated for the adversary PR (ISSUE 2 satellite): re-run at >= 300 s
    // per the ROADMAP suggestion.  Longer durations do NOT close the gap —
    // AODV's on-demand rediscoveries keep adding distinct relays for the whole
    // run (seed 1 at 300 s touches 46 of 48 candidate nodes), so the
    // cumulative count is protocol-churn-bound, not spreading-bound.  Kept
    // ignored with the measurement recorded; the assertion itself is
    // unchanged so the original claim stays visible.
    let seeds = [1u64, 2, 3];
    let avg = |protocol: Protocol| -> f64 {
        let runs: Vec<RunMetrics> = seeds
            .iter()
            .map(|&s| short_run(protocol, 10.0, s, 300.0))
            .collect();
        RunMetrics::average(&runs).participating_nodes as f64
    };
    let mts = avg(Protocol::Mts);
    let aodv = avg(Protocol::Aodv);
    assert!(
        mts + 1e-9 >= aodv,
        "MTS participating nodes ({mts}) should not be fewer than AODV ({aodv})"
    );
}

#[test]
fn windowed_participation_revisits_the_fig5_spreading_claim() {
    // ISSUE 3 satellite: the ROADMAP proposed a *windowed* participant count
    // (distinct relays per 10 s interval) as the faithful Fig. 5 metric,
    // because the cumulative count rewards AODV's route churn (each break
    // recruits a fresh relay chain forever).
    //
    // MEASURED OUTCOME (60 s x seeds {1,2,3}, speed 10, 10 s windows):
    //   DSR  3.10   AODV 5.49   MTS 4.91   (mean windowed participants)
    // and at 120 s x 5 seeds: DSR 2.09, AODV 3.86, MTS 2.86.  The windowed
    // count narrows the cumulative gap (MTS beats AODV on 2 of 3 seeds
    // here) but does NOT reverse it on average: AODV's flapping recruits
    // several distinct relays *within* a 10 s window too, so even the
    // windowed metric partly measures churn.  The Fig. 5 ordering therefore
    // remains unreproduced under both countings; MTS's spreading advantage
    // stays visible in the relay-share std-dev (Fig. 6) and the k-coalition
    // coverage curves (tests/attacks.rs).  The cumulative-count test above
    // stays #[ignore]d, with this measurement recorded here and in
    // ROADMAP.md.
    let stats = |protocol: Protocol| -> (f64, f64) {
        let runs: Vec<RunMetrics> = [1u64, 2, 3]
            .iter()
            .map(|&s| short_run(protocol, 10.0, s, 60.0))
            .collect();
        let avg = RunMetrics::average(&runs);
        (
            avg.mean_windowed_participants,
            avg.participating_nodes as f64,
        )
    };
    let (dsr_w, dsr_c) = stats(Protocol::Dsr);
    let (aodv_w, aodv_c) = stats(Protocol::Aodv);
    let (mts_w, mts_c) = stats(Protocol::Mts);
    // Structural sanity: every protocol relays in windows, and no window can
    // hold more distinct relays than the whole run did.
    for (w, c) in [(dsr_w, dsr_c), (aodv_w, aodv_c), (mts_w, mts_c)] {
        assert!(w > 0.0, "windowed participation must be observed");
        assert!(w <= c, "a window cannot exceed the cumulative count");
    }
    // The robust part of the paper's claim: MTS keeps more relays busy per
    // interval than single-path DSR (multipath spreading is instantaneous,
    // not churn).  The AODV comparison is the measured outcome documented
    // above — asserted only as "the windowed gap is smaller than 2x", since
    // the direction varies by seed.
    assert!(
        mts_w > dsr_w,
        "MTS windowed participants ({mts_w:.2}) must exceed DSR's ({dsr_w:.2})"
    );
    assert!(
        aodv_w < 2.0 * mts_w,
        "windowed counting keeps AODV's churn advantage bounded \
         (AODV {aodv_w:.2} vs MTS {mts_w:.2})"
    );
}

#[test]
fn mts_control_overhead_exceeds_aodv() {
    let seeds = [1u64, 2];
    let total = |protocol: Protocol| -> u64 {
        seeds
            .iter()
            .map(|&s| short_run(protocol, 10.0, s, 25.0).control_overhead)
            .sum()
    };
    let mts = total(Protocol::Mts);
    let aodv = total(Protocol::Aodv);
    assert!(
        mts > aodv,
        "MTS ({mts}) should pay more control overhead than AODV ({aodv}) — it keeps checking routes"
    );
}

#[test]
fn figure_generators_cover_every_speed_and_protocol() {
    let spec = SweepSpec {
        duration: 10.0,
        seeds: vec![1],
        ..SweepSpec::paper()
    };
    let outcome = sweep(&spec);
    assert_eq!(outcome.points.len(), 15, "3 protocols x 5 speeds");
    for figure in FigureId::ALL {
        if figure == FigureId::Table1RelayTable {
            continue;
        }
        let series = figure_series(figure, &outcome);
        assert_eq!(
            series.len(),
            3,
            "{figure:?} must have one series per protocol"
        );
        for s in &series {
            assert_eq!(s.points.len(), 5, "{figure:?} must cover every speed");
            assert!(s.points.iter().all(|p| p.value.is_finite()));
        }
        let text = render_figure(figure, &outcome);
        assert!(text.contains("MTS") && text.contains("DSR") && text.contains("AODV"));
    }
}

#[test]
fn table1_regeneration_produces_a_consistent_relay_table() {
    let table = table1_relay_table(10.0, 1, 20.0);
    // A 50-node DSR run with traffic has at least one relay, the shares sum to
    // one and the standard deviation is a valid fraction.
    assert!(table.participants() >= 1);
    let share_sum: f64 = table.rows.iter().map(|r| r.gamma).sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
    assert!(table.std_dev >= 0.0 && table.std_dev <= 1.0);
    assert_eq!(table.alpha, table.rows.iter().map(|r| r.beta).sum::<u64>());
}

#[test]
fn ablation_hooks_change_the_scenario() {
    // The sweep customization hook used by the ablation benches must apply.
    let spec = SweepSpec {
        protocols: vec![Protocol::Mts],
        speeds: vec![5.0],
        seeds: vec![1],
        duration: 10.0,
    };
    let plain = sweep(&spec);
    let single_path = sweep_with(&spec, |s| s.with_mts_config(MtsConfig::with_max_paths(1)));
    assert_eq!(plain.points.len(), 1);
    assert_eq!(single_path.points.len(), 1);
    // Both produced valid runs; the single-path variant cannot have *more*
    // stored-path diversity, which shows up as no-more participating nodes on
    // the same seed.  (Equal is allowed: one seed is a small sample.)
    assert!(
        single_path.points[0].metrics.participating_nodes
            <= plain.points[0].metrics.participating_nodes + 2
    );
}
