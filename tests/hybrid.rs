//! Acceptance tests of the hybrid fluid/packet traffic engine
//! (`manet_netsim::fluid`, `docs/TRAFFIC.md`).
//!
//! Two contracts are pinned here:
//!
//! 1. **Off means identical.**  A `background` config with zero fluid flows
//!    builds no fluid state, draws no RNG and schedules no epoch events: the
//!    run is byte-identical to one with `background: None`.
//! 2. **The collapse curve survives the abstraction.**  Replacing every
//!    offered flow beyond the PR 5 goodput peak with an analytic fluid flow
//!    must reproduce the congestion-collapse shape within the documented
//!    tolerance — peak location exact at 5 flows, Jain fairness within ±0.1
//!    of the equal-load packet run at every point — while processing a small
//!    fraction of the packet engine's events.
//!
//! The curve comparison needs the release-scale packet reference runs
//! (~3M events per seed at 50 flows), so it no-ops under debug builds; CI
//! runs it via `cargo test --release --test hybrid`.

use bench::{bench_hybrid, hybrid_background, BENCH_HYBRID_FOREGROUND};
use manet_experiments::runner::run_scenario_traced;
use manet_experiments::{Protocol, Scenario, TrafficFlow};
use manet_netsim::{Duration, FluidConfig};
use manet_wire::NodeId;

/// The PR 5 flow axis: the goodput peak sits at 5 concurrent flows.
const FLOW_AXIS: [u16; 4] = [1, 5, 25, 50];

#[test]
fn zero_flow_background_is_byte_identical_to_no_background() {
    let mut baseline = Scenario::paper(Protocol::Mts, 10.0, 1);
    baseline.sim.duration = Duration::from_secs(10.0);
    let mut with_empty_background = baseline.clone().with_background(FluidConfig {
        flows: 0,
        ..hybrid_background()
    });
    with_empty_background.sim.duration = Duration::from_secs(10.0);

    let (_, base) = run_scenario_traced(&baseline);
    let (fluid_metrics, fluid) = run_scenario_traced(&with_empty_background);
    assert_eq!(
        base.trace(),
        fluid.trace(),
        "a zero-flow background config must not perturb the packet run"
    );
    assert_eq!(
        base.delivered_data_packets(),
        fluid.delivered_data_packets()
    );
    assert_eq!(fluid_metrics.fluid_flows, 0);
    assert_eq!(fluid_metrics.fluid_delivered_bytes, 0);
    assert!(fluid.fluid_flows().is_empty());
}

#[test]
fn fluid_ledger_conserves_bytes_and_completes_bounded_flows() {
    let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1);
    scenario.eavesdropper = None; // avoid colliding with the flow endpoints
    scenario
        .flows
        .push(TrafficFlow::fluid(NodeId(10), NodeId(40)));
    scenario.sim.duration = Duration::from_secs(10.0);
    scenario = scenario.with_background(FluidConfig {
        flows: 8,
        flow_bytes: 20_000,
        ..hybrid_background()
    });
    let (metrics, recorder) = run_scenario_traced(&scenario);

    assert_eq!(
        metrics.fluid_flows, 9,
        "8 generated + 1 explicit fluid flow"
    );
    let mut completed = 0;
    for (conn, totals) in recorder.fluid_flows() {
        assert!(
            totals.delivered_bytes <= totals.offered_bytes,
            "conn {conn}: delivered {} > offered {}",
            totals.delivered_bytes,
            totals.offered_bytes
        );
        // A flow's rate never exceeds its demand, so its ledger never
        // exceeds demand x duration.
        let cap = (hybrid_background().demand_bytes_per_sec * 10.0).ceil() as u64;
        assert!(
            totals.delivered_bytes <= cap,
            "conn {conn}: delivered {} exceeds demand x duration {cap}",
            totals.delivered_bytes
        );
        if totals.completion_secs.is_some() {
            completed += 1;
            assert_eq!(
                totals.delivered_bytes, totals.offered_bytes,
                "conn {conn}: completed flows must have moved every offered byte"
            );
        }
    }
    assert!(
        completed > 0,
        "bounded 20 kB flows at 6 kB/s demand should complete within 10 s"
    );
    // The analytic ledger stays separate from the exact packet ledger: the
    // recorder's aggregate equals the per-flow fluid sum, not the packet one.
    assert_eq!(
        metrics.fluid_delivered_bytes,
        recorder
            .fluid_flows()
            .values()
            .map(|f| f.delivered_bytes)
            .sum::<u64>()
    );
    assert!(metrics.fluid_delivered_bytes > 0);
}

#[test]
fn hybrid_collapse_curve_stays_within_documented_tolerance() {
    if cfg!(debug_assertions) {
        eprintln!(
            "skipping: the packet reference runs are release-scale \
             (CI runs `cargo test --release --test hybrid`)"
        );
        return;
    }
    // Byte-identity of the no-background hybrid runs (flows <= foreground
    // cap) is asserted inside bench_hybrid itself.
    let points = bench_hybrid(500, &FLOW_AXIS, 5.0, 1, 1);
    let packet: Vec<_> = points.iter().filter(|p| p.mode == "packet").collect();
    let hybrid: Vec<_> = points.iter().filter(|p| p.mode == "hybrid").collect();
    assert_eq!(packet.len(), FLOW_AXIS.len());
    assert_eq!(hybrid.len(), FLOW_AXIS.len());

    // Goodput peak location exact: 5 flows, on both curves.
    let hybrid_peak = hybrid
        .iter()
        .max_by(|a, b| {
            a.goodput_bytes_per_sec
                .partial_cmp(&b.goodput_bytes_per_sec)
                .expect("goodput is finite")
        })
        .expect("non-empty axis");
    assert_eq!(
        hybrid_peak.flows,
        5,
        "the hybrid curve's goodput peak moved off the 5-flow point: {:?}",
        hybrid
            .iter()
            .map(|p| (p.flows, p.goodput_bytes_per_sec.round()))
            .collect::<Vec<_>>()
    );

    // Jain fairness within +-0.1 of the equal-load packet run, per point.
    for (p, h) in packet.iter().zip(&hybrid) {
        assert_eq!(p.flows, h.flows, "axes out of step");
        let dj = (p.fairness_index - h.fairness_index).abs();
        assert!(
            dj <= 0.1,
            "flows={}: fairness drifted by {dj:.3} (packet {:.3}, hybrid {:.3}) \
             — outside the documented +-0.1 tolerance",
            p.flows,
            p.fairness_index,
            h.fairness_index
        );
    }

    // Event-count budget: <= 25% of the pure-packet engine at 50 flows.
    let p50 = packet
        .iter()
        .find(|p| p.flows == 50)
        .expect("50-flow point");
    let h50 = hybrid
        .iter()
        .find(|p| p.flows == 50)
        .expect("50-flow point");
    assert!(
        h50.events * 4 <= p50.events,
        "hybrid processed {} events at 50 flows — more than 25% of the \
         packet engine's {}",
        h50.events,
        p50.events
    );

    // The fluid layer actually carried the background load.
    for h in &hybrid {
        if h.flows > BENCH_HYBRID_FOREGROUND {
            assert!(
                h.fluid_delivered_bytes > 0,
                "flows={}: the fluid background delivered nothing",
                h.flows
            );
        }
    }
}
