//! Determinism contract of the sharded engine (see `manet_netsim::shard`).
//!
//! Three guarantees are pinned here, end to end through the full protocol
//! stack (TCP over routing over the MAC), not just the mobility layer:
//!
//! 1. `Sharded { shards: 1, .. }` is **byte-identical** to `Serial` — same
//!    trace, same counters — on the paper scenario, a black-hole attack
//!    scenario and a multi-flow scenario.
//! 2. At a fixed shard count, the worker count **never** changes the result:
//!    `workers ∈ {1, 2, 4, 8}` replay the same trace byte for byte.
//! 3. Sharded runs populate the shard counters in
//!    [`manet_netsim::EnginePerf`] coherently.

use manet_experiments::runner::run_scenario_traced;
use manet_experiments::{AttackConfig, Protocol, Scenario};
use manet_netsim::{Duration, Execution, TraceEvent};
use proptest::prelude::*;

/// FNV-1a over the Debug rendering of every trace event (same digest as
/// `tests/golden_trace.rs`): sensitive to any reordering, retiming or
/// kind/size change of any transmission.
fn trace_digest(trace: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = String::new();
    for ev in trace {
        buf.clear();
        use std::fmt::Write as _;
        let _ = write!(buf, "{ev:?}");
        for b in buf.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Everything a byte-identity comparison looks at: the full trace digest
/// plus the headline counters (so a digest collision cannot hide a drift).
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    trace_digest: u64,
    trace_len: usize,
    originated: u64,
    delivered: u64,
    control_tx: u64,
    collisions: u64,
    link_failures: u64,
    adversary_drops: u64,
}

fn fingerprint(scenario: &Scenario) -> RunFingerprint {
    let (_, recorder) = run_scenario_traced(scenario);
    RunFingerprint {
        trace_digest: trace_digest(recorder.trace()),
        trace_len: recorder.trace().len(),
        originated: recorder.originated_data_packets(),
        delivered: recorder.delivered_data_packets(),
        control_tx: recorder.control_transmissions(),
        collisions: recorder.collisions(),
        link_failures: recorder.link_failures(),
        adversary_drops: recorder.adversary_drops(),
    }
}

fn with_execution(mut scenario: Scenario, execution: Execution) -> Scenario {
    scenario.sim.execution = execution;
    scenario
}

fn single_shard(workers: u16) -> Execution {
    Execution::Sharded {
        shards: 1,
        workers,
        window: None,
    }
}

/// The three scenario families the determinism contract must hold on.
fn contract_scenarios() -> Vec<(&'static str, Scenario)> {
    let mut paper = Scenario::paper(Protocol::Mts, 10.0, 1);
    paper.sim.duration = Duration::from_secs(10.0);
    let mut attack =
        Scenario::paper(Protocol::MtsHardened, 10.0, 1).with_attack(AttackConfig::blackhole(2));
    attack.sim.duration = Duration::from_secs(10.0);
    let mut multi = Scenario::random_pairs(Protocol::Mts, 100, 4, 10.0, 1);
    multi.sim.duration = Duration::from_secs(10.0);
    vec![
        ("paper", paper),
        ("blackhole-attack", attack),
        ("multi-flow", multi),
    ]
}

#[test]
fn one_shard_is_byte_identical_to_serial_on_every_contract_scenario() {
    for (name, scenario) in contract_scenarios() {
        let serial = fingerprint(&with_execution(scenario.clone(), Execution::Serial));
        let sharded = fingerprint(&with_execution(scenario, single_shard(1)));
        assert_eq!(
            serial, sharded,
            "{name}: Sharded{{shards: 1}} drifted from the serial engine"
        );
    }
}

#[test]
fn worker_count_never_changes_the_trace() {
    let scenario = {
        let mut s = Scenario::paper(Protocol::Mts, 10.0, 1);
        s.sim.duration = Duration::from_secs(10.0);
        s
    };
    let runs: Vec<(u16, RunFingerprint)> = [1u16, 2, 4, 8]
        .into_iter()
        .map(|workers| {
            let execution = Execution::Sharded {
                shards: 4,
                workers,
                window: None,
            };
            (
                workers,
                fingerprint(&with_execution(scenario.clone(), execution)),
            )
        })
        .collect();
    let (_, reference) = &runs[0];
    for (workers, fp) in &runs[1..] {
        assert_eq!(
            fp, reference,
            "workers={workers} replayed a different trace than workers=1 \
             at the same shard count"
        );
    }
}

/// The CI perf-smoke cell: a hostile relay pair plus four concurrent flows
/// under genuinely parallel execution (2 shards × 2 worker threads) must
/// replay the single-worker run byte for byte — adversarial drops and
/// multi-flow contention don't weaken the determinism contract.
#[test]
fn two_worker_multi_flow_blackhole_cell_is_worker_independent() {
    let mut scenario = Scenario::random_pairs(Protocol::MtsHardened, 100, 4, 10.0, 1)
        .with_attack(AttackConfig::blackhole(2));
    scenario.sim.duration = Duration::from_secs(10.0);
    let fingerprints: Vec<RunFingerprint> = [1u16, 2]
        .into_iter()
        .map(|workers| {
            let execution = Execution::Sharded {
                shards: 2,
                workers,
                window: None,
            };
            fingerprint(&with_execution(scenario.clone(), execution))
        })
        .collect();
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "2-worker multi-flow + black-hole run drifted from the 1-worker run"
    );
}

#[test]
fn sharded_runs_report_coherent_shard_counters() {
    let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1);
    scenario.sim.duration = Duration::from_secs(10.0);
    let scenario = with_execution(
        scenario,
        Execution::Sharded {
            shards: 4,
            workers: 2,
            window: None,
        },
    );
    let (_, recorder) = run_scenario_traced(&scenario);
    let perf = recorder.engine_perf();
    assert_eq!(perf.shards, 4);
    assert!(perf.windows > 0, "a 10 s run must cross many barriers");
    assert!(perf.window_micros > 0, "the default lookahead is non-zero");
    assert!(
        perf.shard_events_min <= perf.shard_events_max,
        "per-shard event extremes are ordered"
    );
    assert!(
        perf.shard_events_max <= perf.events_processed,
        "no shard processes more events than the whole run"
    );
    assert!(
        perf.cross_shard_announcements > 0,
        "a 50-node paper run must announce transmissions across stripes"
    );
    // The destination-mask fan-out fix: on a 4-stripe field wider than the
    // carrier-sense range, most transmissions cannot touch the far stripes,
    // so the barrier must skip (announcements × shards) applications vs the
    // old all-to-all broadcast.  The counter proves the reduction happened.
    assert!(
        perf.announcements_skipped > 0,
        "narrow transmissions must be skipped at out-of-footprint shards \
         ({} announcements, 0 skipped)",
        perf.cross_shard_announcements
    );
}

/// The determinism contract holds with telemetry ENABLED: telemetry is
/// outside the trace digest — it observes, never perturbs.  A single-shard
/// run collecting the full event stream still replays the telemetry-off
/// serial engine byte for byte, a 4-shard telemetry-on run replays the
/// 4-shard telemetry-off run byte for byte, and the wall-clock phase timers
/// show up in [`manet_netsim::EnginePerf`] without entering the equivalence
/// comparison (masked by `without_phase_timers`).
#[test]
fn telemetry_enabled_sharded_run_keeps_byte_identity_and_reports_phase_timers() {
    let telemetry = manet_netsim::TelemetryConfig {
        enabled: true,
        window_secs: Some(1.0),
        trace_packet: None,
    };
    let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1);
    scenario.sim.duration = Duration::from_secs(10.0);
    let serial_off = fingerprint(&with_execution(scenario.clone(), Execution::Serial));
    let one_shard_on = fingerprint(&with_execution(
        scenario.clone().with_telemetry(telemetry),
        single_shard(2),
    ));
    assert_eq!(
        one_shard_on, serial_off,
        "telemetry-on single-shard run drifted from the telemetry-off serial run"
    );
    let four_shards = Execution::Sharded {
        shards: 4,
        workers: 2,
        window: None,
    };
    let sharded_off = fingerprint(&with_execution(scenario.clone(), four_shards));
    let sharded = with_execution(scenario.with_telemetry(telemetry), four_shards);
    let (_, recorder) = run_scenario_traced(&sharded);
    let fp = RunFingerprint {
        trace_digest: trace_digest(recorder.trace()),
        trace_len: recorder.trace().len(),
        originated: recorder.originated_data_packets(),
        delivered: recorder.delivered_data_packets(),
        control_tx: recorder.control_transmissions(),
        collisions: recorder.collisions(),
        link_failures: recorder.link_failures(),
        adversary_drops: recorder.adversary_drops(),
    };
    assert_eq!(
        fp, sharded_off,
        "enabling telemetry changed the 4-shard run"
    );
    assert!(
        !recorder.telemetry.events().is_empty(),
        "the sharded run collected no telemetry"
    );
    let perf = recorder.engine_perf();
    assert!(
        perf.phase_execute_nanos > 0,
        "worker execute-phase timer is zero"
    );
    assert!(
        perf.phase_barrier_nanos > 0,
        "worker barrier-phase timer is zero"
    );
    // The timers are wall-clock (nondeterministic) and must vanish from the
    // masked view used by equivalence comparisons.
    let masked = perf.without_phase_timers();
    assert_eq!(
        (
            masked.phase_execute_nanos,
            masked.phase_barrier_nanos,
            masked.phase_apply_nanos
        ),
        (0, 0, 0)
    );
}

proptest! {
    /// Seed-randomized spot check of guarantee 1: whatever the seed and the
    /// node speed, a single-shard run replays the serial engine byte for
    /// byte on a small multi-flow scenario.
    #[test]
    fn one_shard_matches_serial_for_random_seeds(
        seed in 0u64..500,
        max_speed in 2.0f64..20.0,
    ) {
        let mut scenario = Scenario::random_pairs(Protocol::Mts, 30, 2, max_speed, seed);
        scenario.sim.duration = Duration::from_secs(5.0);
        let serial = fingerprint(&with_execution(scenario.clone(), Execution::Serial));
        let sharded = fingerprint(&with_execution(scenario, single_shard(2)));
        prop_assert_eq!(serial, sharded);
    }
}
