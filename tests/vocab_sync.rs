//! Vocabulary-drift guard between the Rust telemetry schema and
//! `tools/trace_summary.py`.
//!
//! The Python summariser validates NDJSON against *closed* label sets
//! (drop reasons, frame kinds, provenance stages, timer classes).  Those
//! sets are hand-maintained mirrors of the `manet_telemetry` constants, so
//! a new enum variant that is not also added to the script silently turns
//! every CI schema check into a false failure (or, worse, the script keeps
//! accepting a label the Rust side no longer emits).  This test parses the
//! script's literal sets out of its source and diffs them against the
//! authoritative Rust vocabularies in both directions.

use manet_netsim::telemetry::event::{DropKind, FRAME_KINDS, STAGES, TIMER_CLASSES};
use std::collections::BTreeSet;

/// Extract the string literals of the `NAME = {...}` set assignment in
/// `trace_summary.py`.  Tolerates multi-line sets and both quote styles;
/// intentionally dumb so a formatting change in the script breaks loudly
/// here rather than silently parsing nothing.
fn python_set(source: &str, name: &str) -> BTreeSet<String> {
    let start = source
        .find(&format!("{name} = {{"))
        .unwrap_or_else(|| panic!("trace_summary.py no longer defines `{name} = {{...}}`"));
    let body_start = start + name.len() + " = {".len();
    let body_end = body_start
        + source[body_start..]
            .find('}')
            .unwrap_or_else(|| panic!("unterminated set literal for {name}"));
    let body = &source[body_start..body_end];
    let mut out = BTreeSet::new();
    let mut rest = body;
    while let Some(open) = rest.find(['"', '\'']) {
        let quote = rest.as_bytes()[open] as char;
        let tail = &rest[open + 1..];
        let close = tail
            .find(quote)
            .unwrap_or_else(|| panic!("unterminated string in {name}"));
        out.insert(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    assert!(!out.is_empty(), "parsed no labels out of {name}");
    out
}

fn script_source() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tools/trace_summary.py");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn as_set(labels: &[&str]) -> BTreeSet<String> {
    labels.iter().map(|s| s.to_string()).collect()
}

#[test]
fn drop_reasons_match_the_rust_enum_exactly() {
    let script = script_source();
    let rust: BTreeSet<String> = DropKind::ALL
        .iter()
        .map(|k| k.label().to_string())
        .collect();
    assert_eq!(
        rust.len(),
        DropKind::ALL.len(),
        "DropKind labels must be pairwise distinct"
    );
    assert_eq!(
        python_set(&script, "DROP_REASONS"),
        rust,
        "DROP_REASONS in tools/trace_summary.py drifted from DropKind::ALL"
    );
}

#[test]
fn non_terminal_reasons_match_is_terminal() {
    let script = script_source();
    let rust: BTreeSet<String> = DropKind::ALL
        .iter()
        .filter(|k| !k.is_terminal())
        .map(|k| k.label().to_string())
        .collect();
    assert_eq!(
        python_set(&script, "NON_TERMINAL"),
        rust,
        "NON_TERMINAL in tools/trace_summary.py drifted from DropKind::is_terminal"
    );
}

#[test]
fn frame_kinds_stages_and_timer_classes_match() {
    let script = script_source();
    assert_eq!(
        python_set(&script, "FRAME_KINDS"),
        as_set(&FRAME_KINDS),
        "FRAME_KINDS drifted"
    );
    assert_eq!(
        python_set(&script, "STAGES"),
        as_set(&STAGES),
        "STAGES drifted"
    );
    assert_eq!(
        python_set(&script, "TIMER_CLASSES"),
        as_set(&TIMER_CLASSES),
        "TIMER_CLASSES drifted"
    );
}
