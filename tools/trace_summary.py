#!/usr/bin/env python3
"""Summarise (or schema-check) a telemetry NDJSON stream.

``reproduce --telemetry FILE`` writes one JSON object per line; this script
renders the stream as a human-readable digest — event counts per type, drops
by reason, per-connection conservation (originated vs delivered vs terminal
drops), flow completions, the sampler's goodput time-series and, when
``--trace-packet`` tagged a packet, its hop-by-hop provenance path.

``--check`` validates instead of summarising: every line must parse as JSON,
carry a known ``ev`` discriminator with exactly the fields of
docs/OBSERVABILITY.md's schema table, and timestamps must be monotone
non-decreasing per shard.  Exit status 0 means the stream is well-formed
(CI runs this against the smoke artifact).

Usage: python3 tools/trace_summary.py [--check] [FILE.ndjson]
       (no file: read stdin)
"""

import json
import signal
import sys
from collections import Counter, defaultdict

# ev -> (required fields, optional fields).  Mirrors the Rust encoder in
# crates/telemetry/src/event.rs; keep the two in sync.
SCHEMA = {
    "originate": ({"t", "shard", "node", "conn", "seq", "data", "bytes"}, set()),
    "frame_enqueue": ({"t", "shard", "node", "kind", "bytes", "queue"}, set()),
    "tx_start": ({"t", "shard", "node", "kind", "bytes"}, set()),
    "collision": ({"t", "shard", "node", "from"}, set()),
    "deliver": ({"t", "shard", "node", "from", "kind"}, {"conn", "seq"}),
    "drop": ({"t", "shard", "node", "reason", "kind"}, {"conn"}),
    "forged_rrep": ({"t", "shard", "node", "from"}, set()),
    "suspicion": ({"t", "shard", "node", "suspect", "score", "table"}, set()),
    "timer": ({"t", "shard", "node", "class", "scope"}, set()),
    "flow_complete": ({"t", "shard", "node", "conn", "bytes"}, set()),
    "provenance": ({"t", "shard", "stage", "node", "conn", "seq", "kind"}, set()),
    "window": (
        {"t", "shard", "window", "goodput", "queue_peak", "cal_resizes",
         "suspicion_peak", "xshard", "fluid_demand", "fluid_alloc"},
        set(),
    ),
}

DROP_REASONS = {
    "queue_overflow", "retry_limit", "jammed", "adversary",
    "no_route", "discovery_failed", "salvage_failed", "schedule_drop",
}

# Non-terminal losses are retried/salvaged and so excluded from the
# conservation ledger (DropKind::is_terminal in the Rust crate).
NON_TERMINAL = {"retry_limit", "jammed"}

FRAME_KINDS = {"RREQ", "RREP", "RERR", "CHECK", "CHECK_ERR", "DATA"}
STAGES = {"originate", "enqueue", "tx_start", "relay", "deliver", "drop",
          "tunnel", "cross_shard"}
TIMER_CLASSES = {"routing", "routing_aux", "transport", "application"}


def check_line(i: int, ev: dict) -> str | None:
    """Return a complaint for line ``i`` (1-based), or None if well-formed."""
    name = ev.get("ev")
    if name not in SCHEMA:
        return f"line {i}: unknown event type {name!r}"
    required, optional = SCHEMA[name]
    fields = set(ev) - {"ev"}
    if missing := required - fields:
        return f"line {i}: {name} missing fields {sorted(missing)}"
    if extra := fields - required - optional:
        return f"line {i}: {name} has unknown fields {sorted(extra)}"
    if not isinstance(ev["t"], (int, float)):
        return f"line {i}: {name} t is not a number"
    if "kind" in ev and ev["kind"] not in FRAME_KINDS:
        return f"line {i}: unknown frame kind {ev['kind']!r}"
    if name == "drop" and ev["reason"] not in DROP_REASONS:
        return f"line {i}: unknown drop reason {ev['reason']!r}"
    if name == "provenance" and ev["stage"] not in STAGES:
        return f"line {i}: unknown provenance stage {ev['stage']!r}"
    if name == "timer" and ev["class"] not in TIMER_CLASSES:
        return f"line {i}: unknown timer class {ev['class']!r}"
    return None


def load(stream) -> tuple[list[dict], list[str]]:
    events, errors = [], []
    last_t: dict[int, float] = {}
    for i, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {i}: not JSON ({e})")
            continue
        if complaint := check_line(i, ev):
            errors.append(complaint)
            continue
        shard, t = ev.get("shard", 0), ev["t"]
        if t < last_t.get(shard, float("-inf")):
            errors.append(
                f"line {i}: t went backwards on shard {shard} "
                f"({t} < {last_t[shard]})"
            )
        last_t[shard] = t
        events.append(ev)
    return events, errors


def summarise(events: list[dict]) -> str:
    lines = []
    counts = Counter(ev["ev"] for ev in events)
    shards = sorted({ev.get("shard", 0) for ev in events})
    span = (events[0]["t"], events[-1]["t"]) if events else (0.0, 0.0)
    lines.append(
        f"{len(events)} events, t in [{span[0]:.3f}, {span[1]:.3f}] s, "
        f"{len(shards)} shard(s)"
    )
    lines.append("")
    lines.append("event counts:")
    for name in SCHEMA:
        if counts[name]:
            lines.append(f"  {name:<14} {counts[name]:>8}")

    drops = Counter(ev["reason"] for ev in events if ev["ev"] == "drop")
    if drops:
        lines.append("")
        lines.append("drops by reason:")
        for reason, n in drops.most_common():
            tag = "" if reason in NON_TERMINAL else "  (terminal)"
            lines.append(f"  {reason:<17} {n:>8}{tag}")

    # Conservation ledger: payload-carrying originations only ("data": true);
    # deliveries/drops of pure ACKs carry no conn/seq and stay out.
    orig: Counter = Counter()
    delivered: Counter = Counter()
    term_drops: Counter = Counter()
    for ev in events:
        if ev["ev"] == "originate" and ev["data"]:
            orig[ev["conn"]] += 1
        elif ev["ev"] == "deliver" and "seq" in ev:
            delivered[ev["conn"]] += 1
        elif (ev["ev"] == "drop" and ev.get("conn") is not None
              and ev["reason"] not in NON_TERMINAL):
            term_drops[ev["conn"]] += 1
    if orig:
        lines.append("")
        lines.append("per-connection conservation "
                     "(originated = delivered + terminal drops + in flight):")
        for conn in sorted(orig):
            o, d, x = orig[conn], delivered[conn], term_drops[conn]
            residual = o - d - x
            flag = "" if residual >= 0 else "  <-- VIOLATION"
            lines.append(
                f"  conn {conn}: {o} originated = {d} delivered "
                f"+ {x} dropped + {residual} in flight{flag}"
            )

    completions = [ev for ev in events if ev["ev"] == "flow_complete"]
    for ev in completions:
        lines.append(
            f"  conn {ev['conn']} completed at t={ev['t']:.3f} s "
            f"({ev['bytes']} bytes acked)"
        )

    windows = [ev for ev in events if ev["ev"] == "window"]
    if windows:
        lines.append("")
        lines.append("sampler windows (aggregated across shards):")
        agg: dict[int, dict] = defaultdict(
            lambda: {"goodput": 0, "queue_peak": 0, "suspicion_peak": 0,
                     "cal_resizes": 0, "xshard": 0,
                     "fluid_demand": 0, "fluid_alloc": 0}
        )
        for ev in windows:
            w = agg[ev["window"]]
            w["goodput"] += sum(ev["goodput"].values())
            w["queue_peak"] = max(w["queue_peak"], ev["queue_peak"])
            w["suspicion_peak"] = max(w["suspicion_peak"], ev["suspicion_peak"])
            w["cal_resizes"] += ev["cal_resizes"]
            w["xshard"] += ev["xshard"]
            w["fluid_demand"] += sum(ev.get("fluid_demand", {}).values())
            w["fluid_alloc"] += sum(ev.get("fluid_alloc", {}).values())
        has_fluid = any(w["fluid_demand"] or w["fluid_alloc"]
                        for w in agg.values())
        header = (f"  {'window':>6}  {'goodput B':>10}  {'queue peak':>10}"
                  f"  {'suspicion':>9}  {'resizes':>7}  {'xshard':>6}")
        if has_fluid:
            header += f"  {'fluid dem':>10}  {'fluid alloc':>11}"
        lines.append(header)
        for idx in sorted(agg):
            w = agg[idx]
            row = (
                f"  {idx:>6}  {w['goodput']:>10}  {w['queue_peak']:>10}"
                f"  {w['suspicion_peak']:>9}  {w['cal_resizes']:>7}"
                f"  {w['xshard']:>6}"
            )
            if has_fluid:
                row += f"  {w['fluid_demand']:>10}  {w['fluid_alloc']:>11}"
            lines.append(row)

    trail = [ev for ev in events if ev["ev"] == "provenance"]
    if trail:
        conn, seq = trail[0]["conn"], trail[0]["seq"]
        lines.append("")
        lines.append(f"provenance of packet {conn}:{seq} ({len(trail)} stages):")
        for ev in trail:
            lines.append(
                f"  t={ev['t']:.6f}  shard {ev['shard']}  "
                f"{ev['stage']:<12} node {ev['node']}"
            )

    security = [ev for ev in events if ev["ev"] in ("forged_rrep", "suspicion")]
    if security:
        forged = sum(1 for ev in security if ev["ev"] == "forged_rrep")
        peaks: dict[int, float] = {}
        for ev in security:
            if ev["ev"] == "suspicion":
                peaks[ev["suspect"]] = max(peaks.get(ev["suspect"], 0.0),
                                           ev["score"])
        lines.append("")
        lines.append(f"security: {forged} forged RREPs rejected, "
                     f"{len(peaks)} suspects scored")
        for suspect, score in sorted(peaks.items(), key=lambda kv: -kv[1])[:10]:
            lines.append(f"  node {suspect}: peak suspicion {score:.3f}")

    return "\n".join(lines)


def main() -> int:
    argv = sys.argv[1:]
    check = "--check" in argv
    argv = [a for a in argv if a != "--check"]
    if len(argv) > 1:
        print(__doc__.strip().splitlines()[-2].strip(), file=sys.stderr)
        return 2
    if argv:
        with open(argv[0], encoding="utf-8") as f:
            events, errors = load(f)
    else:
        events, errors = load(sys.stdin)
    if errors:
        for e in errors[:20]:
            print(f"trace_summary: {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"trace_summary: ... {len(errors) - 20} more", file=sys.stderr)
        return 1
    if check:
        print(f"trace_summary: {len(events)} events OK")
        return 0
    print(summarise(events))
    return 0


if __name__ == "__main__":
    # Die quietly when the reader goes away (`trace_summary.py f | head`).
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
