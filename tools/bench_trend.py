#!/usr/bin/env python3
"""Merge every committed ``BENCH_*.json`` into one perf-trajectory table.

Each bench JSON (written by ``reproduce --bench-json``) carries a node-scaling
axis (``runs``: n x event-queue backend), an optional flow axis
(``flow_runs``, skipped here), an optional execution axis
(``execution_runs``: n x serial-vs-sharded x workers) and — since the fluid
engine — an optional hybrid axis (``hybrid_runs``: packet vs hybrid at equal
offered load, labelled ``{mode} {flows}fl+{background}bg``).  This script
merges them into one table with a row per (n, queue, config) combination and
an events/sec column per file, so the engine's throughput trajectory across
PRs is readable at a glance.  Files written before the execution axis existed
default to serial / 1 shard / 1 worker.

The same table is available from the Rust side as ``reproduce --bench-trend``
(kept in sync by ``crates/bench/src/lib.rs``'s trend tests); this standalone
copy exists so CI can print the trend without building the workspace.

Usage: python3 tools/bench_trend.py [FILE.json ...]
       (no arguments: every BENCH_*.json in the repository root)
"""

import json
import subprocess
import sys
from pathlib import Path


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=True,
    )
    return Path(out.stdout.strip())


def rows_of(label: str, doc: dict) -> list[dict]:
    """Flatten one bench JSON into trend rows (node + execution axes)."""
    rows = []
    for run in doc.get("runs", []):
        rows.append(
            {
                "label": label,
                "n": run["n"],
                "queue": run.get("queue", "calendar"),
                "execution": run.get("execution", "serial"),
                "shards": run.get("shards", 1),
                "workers": run.get("workers", 1),
                "events_per_sec": run["events_per_sec"],
            }
        )
    for run in doc.get("execution_runs", []):
        rows.append(
            {
                "label": label,
                "n": run["n"],
                "queue": run.get("queue", "calendar"),
                "execution": run.get("execution", "serial"),
                "shards": run.get("shards", 1),
                "workers": run.get("workers", 1),
                "events_per_sec": run["events_per_sec"],
            }
        )
    # Hybrid axis (since the fluid engine): packet-vs-hybrid at equal
    # offered load; "mode" takes the execution slot of the config label.
    for run in doc.get("hybrid_runs", []):
        rows.append(
            {
                "label": label,
                "n": run["n"],
                "queue": run.get("queue", "calendar"),
                "execution": run.get("mode", "hybrid"),
                "shards": 1,
                "workers": 1,
                "flows": run.get("flows", 0),
                "background": run.get("background", 0),
                "events_per_sec": run["events_per_sec"],
            }
        )
    return rows


def execution_label(row: dict) -> str:
    if row.get("flows", 0) > 0:
        return f"{row['execution']} {row['flows']}fl+{row['background']}bg"
    if row["execution"] == "serial":
        return "serial"
    return f"{row['execution']} {row['shards']}s{row['workers']}w"


def render(rows: list[dict]) -> str:
    labels = sorted({r["label"] for r in rows})
    configs = sorted({(r["n"], r["queue"], execution_label(r)) for r in rows})
    # First row wins on key collision (matches the Rust renderer): the
    # canonical node-axis number takes priority over the execution axis'
    # serial baseline re-measure at the same (n, queue).
    cells: dict = {}
    for r in rows:
        cells.setdefault(
            (r["label"], r["n"], r["queue"], execution_label(r)),
            r["events_per_sec"],
        )
    lines = [
        f"{'n':>6}  {'queue':<8}  {'execution':<14}"
        + "".join(f"  {label:>12}" for label in labels)
    ]
    for n, queue, execution in configs:
        cols = "".join(
            f"  {cells.get((label, n, queue, execution), '-'):>12.0f}"
            if (label, n, queue, execution) in cells
            else f"  {'-':>12}"
            for label in labels
        )
        lines.append(f"{n:>6}  {queue:<8}  {execution:<14}" + cols)
    return "\n".join(lines)


def main() -> int:
    if len(sys.argv) > 1:
        files = [Path(a) for a in sys.argv[1:]]
    else:
        files = sorted(repo_root().glob("BENCH_*.json"))
    if not files:
        print("bench_trend: no BENCH_*.json files found", file=sys.stderr)
        return 1
    rows = []
    for path in files:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_trend: cannot read {path}: {e}", file=sys.stderr)
            return 1
        rows.extend(rows_of(path.stem, doc))
    print(render(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
