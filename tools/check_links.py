#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans every tracked ``*.md`` file outside ``vendor/`` and ``target/`` for
inline links/images (``[text](target)``) whose target is a relative path, and
fails if the referenced file or directory does not exist.  External links
(``http(s)://``), pure in-page anchors (``#...``) and rustdoc-style intra-doc
references are ignored — this guards the docs/README cross-link graph, not
the web.

Usage: python3 tools/check_links.py  (from anywhere inside the repo)
"""

import re
import subprocess
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IGNORED_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=True,
    )
    return Path(out.stdout.strip())


def markdown_files(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md"], cwd=root, capture_output=True, text=True, check=True
    )
    files = [root / line for line in out.stdout.splitlines()]
    return [
        f
        for f in files
        if "vendor/" not in f.as_posix() and "target/" not in f.as_posix()
    ]


def main() -> int:
    root = repo_root()
    broken: list[str] = []
    checked = 0
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(IGNORED_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            checked += 1
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                broken.append(f"{md.relative_to(root)}:{line}: broken link -> {target}")
    for b in broken:
        print(b)
    print(f"checked {checked} relative links in {len(markdown_files(root))} markdown files")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
