//! # mts-repro
//!
//! Umbrella crate for the reproduction of *"A New Multipath Routing Approach
//! to Enhancing TCP Security in Ad Hoc Wireless Networks"* (Zhi Li and
//! Yu-Kwong Kwok, ICPP Workshops 2005).
//!
//! The workspace is organised in layers (see `DESIGN.md`); this crate simply
//! re-exports the pieces a downstream user needs, and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! ```no_run
//! use mts_repro::prelude::*;
//!
//! // One paper-environment run of MTS at max speed 10 m/s.
//! let mut scenario = Scenario::paper(Protocol::Mts, 10.0, 1);
//! scenario.sim.duration = manet_netsim::Duration::from_secs(30.0);
//! let metrics = run_scenario(&scenario);
//! println!("participating nodes: {}", metrics.participating_nodes);
//! println!("highest interception ratio: {:.3}", metrics.highest_interception_ratio);
//! ```

pub use manet_adversary as adversary;
pub use manet_experiments as experiments;
pub use manet_mck as mck;
pub use manet_netsim as netsim;
pub use manet_routing as routing;
pub use manet_security as security;
pub use manet_stack as stack;
pub use manet_tcp as tcp;
pub use manet_wire as wire;
pub use mts_core as mts;

/// The most common imports for building and running experiments.
pub mod prelude {
    pub use manet_adversary::{
        capture_report, coalition_curve, coalition_report, AttackConfig, AttackKind, CaptureReport,
        CoalitionPlacement, CoverageBasis,
    };
    pub use manet_experiments::attacks::{
        attack_matrix, render_attack_matrix, AttackMatrixOutcome, AttackSweepSpec,
    };
    pub use manet_experiments::figures::{figure_series, table1_relay_table, FigureId};
    pub use manet_experiments::report::{render_figure, render_relay_table};
    pub use manet_experiments::runner::{
        run_scenario, run_scenario_with_recorder, sweep, sweep_with, SweepSpec,
    };
    pub use manet_experiments::{FlowMetrics, Protocol, RunMetrics, Scenario, TrafficFlow};
    pub use manet_netsim::{Duration, JamTarget, RushConfig, SimConfig, SimTime, WormholeConfig};
    pub use manet_stack::{ManetStack, SharedTcpStats, TcpRunReport, TcpRunStats};
    pub use manet_tcp::{FlowProfile, FlowShape};
    pub use manet_wire::{ConnectionId, NodeId};
    pub use mts_core::{Mts, MtsConfig, RouteCheckConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        let s = Scenario::paper(Protocol::Mts, 5.0, 1);
        assert_eq!(s.sim.num_nodes, 50);
        assert_eq!(MtsConfig::default().max_paths, 5);
    }
}
