//! Worst-case eavesdropper analysis: for a single run of each protocol, rank
//! every candidate node by its interception ratio and print the top five.
//! This is the per-node view behind the paper's Fig. 7 (highest interception
//! ratio) and Table I (relay concentration).
//!
//! ```text
//! cargo run --release --example eavesdropper_worstcase
//! ```

use manet_security::interception::interception_ratio;
use manet_security::relay_distribution;
use mts_repro::prelude::*;

fn main() {
    let duration = 30.0;
    let seed = 2;
    let max_speed = 10.0;

    for protocol in Protocol::ALL {
        let mut scenario = Scenario::paper(protocol, max_speed, seed);
        scenario.sim.duration = Duration::from_secs(duration);
        let endpoints = scenario.endpoints();
        let (metrics, recorder) = run_scenario_with_recorder(&scenario);

        println!("=== {} ===", protocol.name());
        println!(
            "flow {} -> {}, designated eavesdropper {:?}",
            endpoints[0], endpoints[1], scenario.eavesdropper
        );
        println!(
            "delivered {} data packets; designated eavesdropper ratio {:.4}",
            metrics.throughput_packets, metrics.interception_ratio
        );

        // Rank every candidate node by interception ratio.
        let mut ranked: Vec<(NodeId, f64)> = (0..scenario.sim.num_nodes)
            .map(NodeId)
            .filter(|n| !endpoints.contains(n))
            .map(|n| (n, interception_ratio(&recorder, n)))
            .filter(|(_, r)| *r > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("worst-case nodes:");
        for (node, ratio) in ranked.iter().take(5) {
            println!("  {node:>5}  Ri = {ratio:.4}");
        }

        let table = relay_distribution(&recorder);
        println!(
            "participants = {}, relay-share std dev = {:.2}%, max share = {:.2}%\n",
            table.participants(),
            table.std_dev * 100.0,
            table.max_share() * 100.0
        );
    }

    println!("Expected shape (paper): under MTS the worst node's ratio and the maximum");
    println!("relay share are clearly lower than under DSR or AODV, because no single");
    println!("intermediate node stays on the data path for long.");
}
