//! Security sweep: regenerate the paper's security figures (Figs. 5–7) from a
//! scaled-down sweep and print them as text tables.
//!
//! ```text
//! cargo run --release --example security_sweep [duration_secs] [seeds]
//! ```
//!
//! Defaults to 20 simulated seconds and 2 seeds per point so it finishes in a
//! couple of minutes; pass `200 5` for the full paper-scale grid.

use mts_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(20.0);
    let seeds: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(2);

    let spec = SweepSpec {
        duration,
        seeds: (1..=seeds).collect(),
        ..SweepSpec::paper()
    };
    eprintln!(
        "running {} simulations ({} s each) — use arguments `200 5` for the full paper grid",
        spec.total_runs(),
        duration
    );
    let outcome = sweep(&spec);

    for figure in [
        FigureId::Fig5ParticipatingNodes,
        FigureId::Fig6RelayStdDev,
        FigureId::Fig7HighestInterception,
    ] {
        println!("{}", render_figure(figure, &outcome));
    }

    println!("Expected shape (paper): MTS shows the most participating nodes, the lowest");
    println!("relay-share standard deviation and the lowest highest-interception ratio at");
    println!("every speed, because its traffic keeps moving across disjoint routes.");
}
