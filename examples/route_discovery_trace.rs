//! Route-discovery trace: run MTS on a small fixed diamond topology with the
//! event trace enabled and print every control-packet transmission, the
//! discovered disjoint paths and the periodic checking traffic.  This is the
//! executable counterpart of the paper's Figs. 1–4 (RREQ broadcast, RREP
//! unicast, non-disjoint paths, route checking).
//!
//! ```text
//! cargo run --release --example route_discovery_trace
//! ```

use manet_experiments::stack::{ManetStack, SharedTcpStats, TcpRunReport};
use manet_netsim::mobility::StaticPlacement;
use manet_netsim::{Duration, NodeStack, Position, Recorder, SimConfig, Simulator, TraceEvent};
use manet_tcp::{FlowProfile, TcpConfig};
use manet_wire::{ConnectionId, NodeId};
use mts_repro::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    // Diamond topology: 0 (source) - {1 upper, 2 lower} - 3 (destination),
    // plus an extra relay 4 giving a third, longer path.
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(200.0, 130.0),
        Position::new(200.0, -130.0),
        Position::new(400.0, 0.0),
        Position::new(120.0, 240.0),
    ];
    let n = positions.len() as u16;
    let mut sim_cfg = SimConfig::default();
    sim_cfg.num_nodes = n;
    sim_cfg.duration = Duration::from_secs(12.0);
    sim_cfg.mobility.max_speed = 0.0;

    let stats: SharedTcpStats = Arc::new(Mutex::new(TcpRunReport::default()));
    let stacks: Vec<Box<dyn NodeStack>> = (0..n)
        .map(|i| {
            let me = NodeId(i);
            let agent = Protocol::Mts.build_agent(me, MtsConfig::default());
            let mut stack = ManetStack::new(me, agent, Arc::clone(&stats));
            if i == 0 {
                stack.add_sender(
                    ConnectionId(0),
                    NodeId(3),
                    TcpConfig::default(),
                    FlowProfile::bulk(),
                );
            }
            if i == 3 {
                stack.add_receiver(ConnectionId(0), NodeId(0));
            }
            Box::new(stack) as Box<dyn NodeStack>
        })
        .collect();
    let mut sim = Simulator::new(sim_cfg, Box::new(StaticPlacement::new(positions)), stacks);
    sim.enable_trace();
    let recorder = sim.run();

    print_trace(&recorder);
    print_summary(&recorder);
}

fn print_trace(recorder: &Recorder) {
    println!("control-plane trace (first 3 seconds):");
    for event in recorder.trace() {
        match event {
            TraceEvent::TxStart {
                node,
                kind,
                bytes,
                at,
            } => {
                if *kind != "DATA" && at.as_secs() <= 3.0 {
                    println!("  {at}  {node} sends {kind} ({bytes} B)");
                }
            }
            TraceEvent::Delivered { node, packet, at } => {
                if at.as_secs() <= 3.0 {
                    println!("  {at}  {node} delivered data packet {packet:?}");
                }
            }
            TraceEvent::LinkFailure { node, next_hop, at } => {
                println!("  {at}  {node} reports link failure towards {next_hop}");
            }
        }
    }
}

fn print_summary(recorder: &Recorder) {
    println!("\nrun summary:");
    println!(
        "  data packets delivered : {}",
        recorder.delivered_data_packets()
    );
    println!(
        "  control transmissions  : {}",
        recorder.control_transmissions()
    );
    for (kind, count) in recorder.control_by_kind() {
        println!("    {kind:<10}: {count}");
    }
    println!("  relays per node        : {:?}", {
        let mut v: Vec<(u16, u64)> = recorder
            .relay_counts()
            .iter()
            .map(|(n, c)| (n.0, *c))
            .collect();
        v.sort();
        v
    });
    println!("\nThe CHECK entries are the periodic route-checking packets the destination");
    println!("sends along every stored disjoint path (paper Fig. 4); both relays appear as");
    println!("forwarders because the source keeps switching to the freshest path.");
}
