//! TCP performance sweep: regenerate the paper's TCP figures (Figs. 8–11) —
//! average end-to-end delay, throughput, delivery rate and control overhead —
//! from a scaled-down sweep.
//!
//! ```text
//! cargo run --release --example tcp_performance [duration_secs] [seeds]
//! ```

use mts_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(20.0);
    let seeds: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(2);

    let spec = SweepSpec {
        duration,
        seeds: (1..=seeds).collect(),
        ..SweepSpec::paper()
    };
    eprintln!(
        "running {} simulations ({} s each) — use arguments `200 5` for the full paper grid",
        spec.total_runs(),
        duration
    );
    let outcome = sweep(&spec);

    for figure in [
        FigureId::Fig8Delay,
        FigureId::Fig9Throughput,
        FigureId::Fig10DeliveryRate,
        FigureId::Fig11ControlOverhead,
    ] {
        println!("{}", render_figure(figure, &outcome));
    }

    println!("Expected shape (paper): MTS has the lowest delay and the highest throughput");
    println!("(it keeps switching to the freshest route); DSR's delivery rate drops sharply");
    println!("as speed grows (stale route caches); MTS pays for its agility with the highest");
    println!("control overhead (the periodic checking packets).");
}
