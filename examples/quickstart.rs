//! Quickstart: run one paper-environment simulation of each protocol and
//! print the security and TCP metrics side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mts_repro::prelude::*;

fn main() {
    // A single seed and a shortened run keep the example quick; the full
    // reproduction (200 s, five seeds) lives in the `reproduce` binary of the
    // `manet-bench` crate.
    let max_speed = 10.0;
    let seed = 1;
    let duration = 30.0;

    println!("MTS reproduction quickstart");
    println!("  50 nodes, 1000 m x 1000 m, 250 m range, random waypoint (max {max_speed} m/s)");
    println!("  one bulk TCP-Reno flow, one random eavesdropper, {duration} simulated seconds\n");

    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "proto", "participants", "highest Ri", "delay (s)", "delivered", "delivery", "overhead"
    );
    for protocol in Protocol::ALL {
        let mut scenario = Scenario::paper(protocol, max_speed, seed);
        scenario.sim.duration = Duration::from_secs(duration);
        let m = run_scenario(&scenario);
        println!(
            "{:>8} {:>14} {:>12.4} {:>12.4} {:>12} {:>12.3} {:>12}",
            protocol.name(),
            m.participating_nodes,
            m.highest_interception_ratio,
            m.mean_delay,
            m.throughput_packets,
            m.delivery_rate,
            m.control_overhead
        );
    }

    println!("\nExpected shape (paper): MTS has the most participating nodes, the lowest");
    println!("highest-interception ratio and the highest control overhead; DSR degrades");
    println!("fastest as the maximum speed grows.");
}
