//! Offline shim of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the workspace
//! uses: infallible `lock()` / `read()` / `write()` without poison handling
//! (a poisoned lock panics, matching parking_lot's no-poisoning semantics
//! closely enough for this single-process simulator).

use std::sync::{self, TryLockError};

/// A mutex with parking_lot's infallible locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
