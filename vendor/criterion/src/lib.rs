//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! The real criterion is unavailable (no crates.io access), so this crate
//! implements the same bench-authoring API — `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box` — backed by a simple wall-clock
//! harness: each sample times one closure invocation, and the mean / min /
//! max over the samples is printed in a criterion-like format.
//!
//! Environment knobs (useful for CI smoke runs):
//!
//! * `MANET_BENCH_SAMPLES` — override every group's sample count.

use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

fn sample_override() -> Option<usize> {
    std::env::var("MANET_BENCH_SAMPLES").ok()?.parse().ok()
}

impl Criterion {
    /// Parse CLI arguments (accepted for API compatibility; the shim ignores
    /// them — cargo passes `--bench` when invoked as a bench target).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let samples = self.default_samples;
        run_benchmark(&id.into(), samples, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.samples, f);
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let samples = sample_override().unwrap_or(samples).max(1);
    let mut b = Bencher {
        samples,
        durations: Vec::with_capacity(samples),
    };
    f(&mut b);
    let timings = b.durations;
    if timings.is_empty() {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().copied().unwrap_or_default();
    let max = timings.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        timings.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Times closure invocations.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample (one warm-up invocation first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_duration_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 timed samples (unless the env override changes it).
        if std::env::var("MANET_BENCH_SAMPLES").is_err() {
            assert_eq!(calls, 4);
        }
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
