//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace has no network access to crates.io, so `serde` is vendored
//! as a marker-trait shim (see `vendor/serde`).  These derives accept the
//! usual `#[derive(Serialize, Deserialize)]` syntax (including `#[serde(...)]`
//! helper attributes) and expand to nothing: the types in this workspace only
//! use the derives as forward-compatible annotations — nothing serializes in
//! the offline build.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
