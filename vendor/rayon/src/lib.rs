//! Offline shim of the `rayon` API surface this workspace uses.
//!
//! Provides `par_iter().map(..).collect()` over slices and `Vec`s, executing
//! on `std::thread::scope` with one contiguous chunk per available core.
//! This is not work-stealing, but the workspace only fans out over
//! embarrassingly parallel simulation runs of similar cost, where static
//! chunking is within a few percent of rayon.

use std::num::NonZeroUsize;

/// Number of worker threads to fan out across.
fn parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A pending parallel iteration over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A pending parallel map over a slice.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` (runs when `collect` is called).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Execute the map across threads and collect the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = parallelism().min(n);
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| scope.spawn(move || items.iter().map(f).collect::<Vec<R>>()))
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Extension trait providing `par_iter`.
pub trait IntoParallelRefIterator<'a> {
    /// The item type iterated over.
    type Item: Sync + 'a;

    /// A parallel iterator over references to the items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u32> = vec![];
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_works() {
        let input = vec![7u8];
        let out: Vec<u8> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
