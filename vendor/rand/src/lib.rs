//! Offline shim of the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a deterministic, dependency-free subset of `rand`: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and a [`rngs::SmallRng`] backed by
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! platforms).  Determinism and uniformity are what the simulator relies on;
//! bit-for-bit compatibility with upstream `rand` streams is *not* promised.

use std::ops::{Range, RangeInclusive};

/// Object-safe core of a random number generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's analogue of
/// sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.  Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(s: [u64; 4]) -> Self {
            // All-zero state is the one invalid xoshiro state.
            if s == [0; 4] {
                SmallRng {
                    s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
                }
            } else {
                SmallRng { s }
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng::from_state(s)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..=31u32);
            assert!(v <= 31);
            seen_lo |= v == 0;
            seen_hi |= v == 31;
        }
        assert!(
            seen_lo && seen_hi,
            "inclusive range endpoints must be reachable"
        );
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dynr: &mut dyn RngCore = &mut rng;
        let v: u16 = dynr.gen_range(0..100u16);
        assert!(v < 100);
        let f: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
