//! Collection strategies: random vectors and sets.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` whose length is uniform in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec size range must be non-empty");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` whose size is uniform in `size` (as far as the element
/// domain allows) and whose elements come from `element`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(
        size.start < size.end,
        "btree_set size range must be non-empty"
    );
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.clone());
        let mut set = BTreeSet::new();
        // Bounded attempts so a small element domain cannot loop forever.
        let mut attempts = 0;
        while set.len() < target && attempts < target * 20 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let strat = vec(0u16..50, 2..9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn btree_set_sizes_and_uniqueness() {
        let mut rng = SmallRng::seed_from_u64(2);
        let strat = btree_set(1u16..=200, 1..8);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..8).contains(&s.len()));
            assert!(s.iter().all(|&x| (1..=200).contains(&x)));
        }
    }

    #[test]
    fn btree_set_with_tiny_domain_terminates() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Only two possible values but sizes up to 7 requested.
        let strat = btree_set(0u16..2, 1..8);
        let s = strat.generate(&mut rng);
        assert!(!s.is_empty() && s.len() <= 2);
    }
}
