//! Strategies: how random test inputs are generated.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Randomly permute the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Collections that can be shuffled in place.
pub trait Shuffleable {
    /// Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut SmallRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Strategy returned by [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (5u16..10).generate(&mut r);
            assert!((5..10).contains(&v));
            let w = (1u32..=3).generate(&mut r);
            assert!((1..=3).contains(&w));
            let f = (0.5f64..2.5).generate(&mut r);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_applies_function() {
        let mut r = rng();
        let v = (0u16..10).prop_map(|x| x + 100).generate(&mut r);
        assert!((100..110).contains(&v));
    }

    #[test]
    fn shuffle_permutes_but_preserves_elements() {
        let mut r = rng();
        let base: Vec<u64> = (0..20).collect();
        let mut saw_permutation = false;
        for _ in 0..10 {
            let mut shuffled = Just(base.clone()).prop_shuffle().generate(&mut r);
            saw_permutation |= shuffled != base;
            shuffled.sort_unstable();
            assert_eq!(shuffled, base);
        }
        assert!(
            saw_permutation,
            "shuffle should produce at least one non-identity permutation"
        );
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u16..5, 10u32..20, 0.0f64..1.0).generate(&mut r);
        assert!(a < 5);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }
}
