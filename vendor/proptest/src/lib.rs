//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! crates.io is unreachable in this build environment, so this crate
//! reimplements the subset of proptest the property tests rely on:
//!
//! * the [`proptest!`] macro (named-argument `arg in strategy` form),
//! * [`strategy::Strategy`] with `prop_map` / `prop_shuffle`,
//! * range, tuple, [`strategy::Just`] and [`any`] strategies,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Each property runs a fixed number of random cases (default 64, override
//! with `PROPTEST_CASES`) from a deterministic per-test seed.  There is no
//! shrinking: a failing case reports its case number and message.

use std::fmt;

pub mod collection;
pub mod strategy;

/// Runtime re-exports for the `proptest!` macro (not part of the public API).
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}

/// Error carried out of a failing property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Number of cases each property runs.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A uniformly random value of `T` over its whole domain.
pub fn any<T: rand::Standard>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// The strategy trait, combinators and primitive strategies.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run named properties over random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Deterministic per-test seed: derived from the test name.
                let seed = {
                    use ::std::hash::{Hash, Hasher};
                    let mut h = ::std::collections::hash_map::DefaultHasher::new();
                    stringify!($name).hash(&mut h);
                    h.finish()
                };
                let cases = $crate::cases();
                let mut rng = <$crate::__rt::SmallRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name), case + 1, cases, e
                        );
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a property (reports the case on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs != *rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}
