//! Offline shim of `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate provides
//! just enough surface for the workspace to compile: `Serialize` /
//! `Deserialize` marker traits (blanket-implemented for every type) and
//! no-op derive macros re-exported under the same names.  The derives in the
//! workspace are forward-compatible annotations; no code path serializes in
//! the offline build.  Swapping this shim for the real `serde` is a
//! one-line change in the workspace manifest.

pub use serde_stub_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(test)]
mod tests {
    // The derives must accept ordinary struct/enum definitions.
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Plain {
        _a: u32,
    }

    #[derive(crate::Serialize, crate::Deserialize)]
    enum Choice {
        _A,
        _B(u8),
    }

    #[test]
    fn derives_expand_to_nothing() {
        let _ = Plain { _a: 1 };
        let Choice::_B(b) = Choice::_B(2) else {
            unreachable!()
        };
        assert_eq!(b, 2);
    }
}
